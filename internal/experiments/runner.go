package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"dpslog/internal/bip"
	"dpslog/internal/dp"
	"dpslog/internal/gen"
	"dpslog/internal/metrics"
	"dpslog/internal/rng"
	"dpslog/internal/sampling"
	"dpslog/internal/searchlog"
	"dpslog/internal/ump"
)

// The paper's parameter grids (§6.1).
var (
	// EExpGrid7 is the paper's e^ε grid.
	EExpGrid7 = []float64{1.001, 1.01, 1.1, 1.4, 1.7, 2.0, 2.3}
	// DeltaGrid7 is the paper's δ grid for Table 4.
	DeltaGrid7 = []float64{1e-4, 1e-3, 1e-2, 1e-1, 0.2, 0.5, 0.8}
	// DeltaGrid4 is the δ subset of Figures 3(a)/3(b)/4.
	DeltaGrid4 = []float64{0.01, 0.1, 0.5, 0.8}
	// DeltaGrid6 is the δ grid of Table 7(a).
	DeltaGrid6 = []float64{1e-3, 1e-2, 1e-1, 0.2, 0.5, 0.8}
	// EExpGrid6 is the e^ε grid of Table 7(b).
	EExpGrid6 = []float64{1.01, 1.1, 1.4, 1.7, 2.0, 2.3}
	// SupportGrid is the paper's minimum-support grid.
	SupportGrid = []float64{1.0 / 100, 1.0 / 250, 1.0 / 500, 1.0 / 750, 1.0 / 1000}
	// OutputFractions scale the paper's |O| grid {3000..8000} by its
	// λ(e^ε=2, δ=0.5) = 13088, so the grid transfers to any corpus size.
	OutputFractions = []float64{0.229, 0.306, 0.382, 0.458, 0.535, 0.611}
)

// Config parameterizes a Runner.
type Config struct {
	// Profile is the synthetic corpus profile: tiny, small or paper.
	Profile string
	// Seed drives corpus generation and sampling.
	Seed uint64
	// FeasPumpIter bounds feasibility-pump rounds (0 → 5). The paper's NEOS
	// runs had server-side limits; this is the local equivalent.
	FeasPumpIter int
	// BBNodes bounds branch & bound nodes (0 → 5).
	BBNodes int
	// SampleReps is the number of sampled outputs averaged in Figure 6
	// (0 → 10, as in the paper).
	SampleReps int
}

// Runner generates the corpus once and regenerates experiments on demand,
// caching plans by privacy budget. Methods are safe for sequential use; the
// caches are mutex-guarded so Prewarm can fill them concurrently.
type Runner struct {
	cfg     Config
	profile gen.Profile
	raw     *searchlog.Log
	pre     *searchlog.Log
	preStat searchlog.PreprocessStats

	mu          sync.Mutex
	lambdaCache map[uint64]*ump.Plan
	fumpCache   map[string]*ump.Plan
	spePct      map[uint64]float64

	// warm shares simplex bases across the grid solves. The pool is sticky
	// (first basis per key wins) and seeded deterministically by anchorOnce
	// with the reference-budget solve, so concurrently prewarmed grids see
	// exactly the bases a serial run would — parallelism cannot change any
	// table cell.
	warm       *ump.WarmStarts
	anchorOnce sync.Once
	anchorErr  error
}

// NewRunner generates the corpus for the profile and seed.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.Profile == "" {
		cfg.Profile = "small"
	}
	if cfg.FeasPumpIter <= 0 {
		cfg.FeasPumpIter = 5
	}
	if cfg.BBNodes <= 0 {
		cfg.BBNodes = 5
	}
	if cfg.SampleReps <= 0 {
		cfg.SampleReps = 10
	}
	profile, err := gen.Profiles(cfg.Profile)
	if err != nil {
		return nil, err
	}
	raw, pre, st, err := gen.GeneratePreprocessed(profile, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Runner{
		cfg:         cfg,
		profile:     profile,
		raw:         raw,
		pre:         pre,
		preStat:     st,
		lambdaCache: map[uint64]*ump.Plan{},
		fumpCache:   map[string]*ump.Plan{},
		spePct:      map[uint64]float64{},
		warm:        ump.NewWarmStarts(true),
	}, nil
}

// Pre returns the preprocessed corpus (for benchmarks that need direct
// access).
func (r *Runner) Pre() *searchlog.Log { return r.pre }

// Raw returns the raw corpus.
func (r *Runner) Raw() *searchlog.Log { return r.raw }

func params(eExp, delta float64) dp.Params { return dp.FromEExp(eExp, delta) }

func budgetKey(p dp.Params) uint64 { return math.Float64bits(p.Budget()) }

// ensureAnchor solves the paper's reference point (e^ε = 2, δ = 0.5) once,
// cold, and lets its bases seed the sticky warm pool. Every other budget of
// a sweep then warm-starts from this one fixed anchor, which is both the
// speedup (the constraint matrix is identical across budgets) and the
// determinism guarantee (no solve depends on which other budget happened to
// finish first).
func (r *Runner) ensureAnchor() error {
	r.anchorOnce.Do(func() {
		p := params(2.0, 0.5)
		plan, err := ump.MaxOutputSize(r.pre, p, ump.Options{Warm: r.warm})
		if err != nil {
			r.anchorErr = err
			return
		}
		r.mu.Lock()
		r.lambdaCache[budgetKey(p)] = plan
		r.mu.Unlock()
	})
	return r.anchorErr
}

// lambdaPlan solves (and caches) O-UMP for the given parameters. Results
// depend only on the merged budget.
func (r *Runner) lambdaPlan(p dp.Params) (*ump.Plan, error) {
	if err := r.ensureAnchor(); err != nil {
		return nil, err
	}
	key := budgetKey(p)
	r.mu.Lock()
	plan, ok := r.lambdaCache[key]
	r.mu.Unlock()
	if ok {
		return plan, nil
	}
	plan, err := ump.MaxOutputSize(r.pre, p, ump.Options{Warm: r.warm})
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.lambdaCache[key] = plan
	r.mu.Unlock()
	return plan, nil
}

// Prewarm solves every distinct O-UMP budget of a parameter grid
// concurrently (one worker per CPU). The λ solve is the dominant cost of
// the grid experiments; warming the budget cache in parallel roughly
// divides Table-4 wall time by the core count.
func (r *Runner) Prewarm(eExps, deltas []float64) error {
	var todo []dp.Params
	seen := map[uint64]bool{}
	for _, e := range eExps {
		for _, d := range deltas {
			p := params(e, d)
			key := budgetKey(p)
			r.mu.Lock()
			_, cached := r.lambdaCache[key]
			r.mu.Unlock()
			if cached || seen[key] {
				continue
			}
			seen[key] = true
			todo = append(todo, p)
		}
	}
	if len(todo) == 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(todo) {
		workers = len(todo)
	}
	jobs := make(chan dp.Params)
	errs := make(chan error, len(todo))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range jobs {
				if _, err := r.lambdaPlan(p); err != nil {
					errs <- err
				}
			}
		}()
	}
	for _, p := range todo {
		jobs <- p
	}
	close(jobs)
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	return nil
}

// fumpPlan solves (and caches) F-UMP. outputSize is clamped to ⌊λ_LP⌋ so
// that tight budgets degrade to smaller (possibly empty) outputs instead of
// infeasibility, preserving the paper's trend curves.
func (r *Runner) fumpPlan(p dp.Params, minSupport float64, outputSize int) (*ump.Plan, int, error) {
	lam, err := r.lambdaPlan(p)
	if err != nil {
		return nil, 0, err
	}
	maxO := int(math.Floor(lam.RelaxationObjective))
	if outputSize > maxO {
		outputSize = maxO
	}
	if outputSize <= 0 {
		// Degenerate budget: the only feasible plan is empty.
		return &ump.Plan{Kind: ump.KindFrequent, Counts: make([]int, r.pre.NumPairs())}, 0, nil
	}
	key := fmt.Sprintf("%x|%g|%d", budgetKey(p), minSupport, outputSize)
	r.mu.Lock()
	plan, ok := r.fumpCache[key]
	r.mu.Unlock()
	if ok {
		return plan, outputSize, nil
	}
	plan, err = ump.FrequentSupport(r.pre, p, minSupport, outputSize, ump.Options{Warm: r.warm})
	if err != nil {
		return nil, 0, err
	}
	r.mu.Lock()
	r.fumpCache[key] = plan
	r.mu.Unlock()
	return plan, outputSize, nil
}

// planRecall computes Equation 9's Recall between the input's frequent
// pairs and the plan-induced output supports (sampling preserves pair
// totals exactly, so plan supports equal sampled-output supports).
func (r *Runner) planRecall(plan *ump.Plan, minSupport float64) float64 {
	inFreq := metrics.FrequentPairs(r.pre, minSupport)
	if len(inFreq) == 0 {
		return 1
	}
	hit := 0
	for i := 0; i < r.pre.NumPairs(); i++ {
		if plan.OutputSize == 0 || plan.Counts[i] == 0 {
			continue
		}
		if float64(plan.Counts[i])/float64(plan.OutputSize) >= minSupport {
			if _, ok := inFreq[r.pre.Pair(i).Key()]; ok {
				hit++
			}
		}
	}
	return float64(hit) / float64(len(inFreq))
}

// referenceLambda returns ⌊λ_LP⌋ at the paper's reference point
// (e^ε = 2, δ = 0.5), the anchor for the scaled |O| grid.
func (r *Runner) referenceLambda() (int, error) {
	plan, err := r.lambdaPlan(params(2.0, 0.5))
	if err != nil {
		return 0, err
	}
	return int(math.Floor(plan.RelaxationObjective)), nil
}

// Table3 reports dataset characteristics for the raw and preprocessed
// corpus, mirroring the paper's Table 3 columns.
func (r *Runner) Table3() (*Table, error) {
	t := &Table{
		ID:     "table3",
		Title:  "Characteristics of the data sets",
		Header: []string{"", "Exp. Dataset", "Preprocessed (no unique pairs)"},
	}
	rs := searchlog.ComputeStats(r.raw)
	ps := searchlog.ComputeStats(r.pre)
	row := func(label string, a, b int) { t.AddRow(label, fmt.Sprint(a), fmt.Sprint(b)) }
	row("# of total tuples (size)", rs.Size, ps.Size)
	row("# of user logs", rs.Users, ps.Users)
	row("# of distinct queries", rs.DistinctQueries, ps.DistinctQueries)
	row("# of distinct urls", rs.DistinctURLs, ps.DistinctURLs)
	row("# of query-url pairs", rs.Pairs, ps.Pairs)
	t.Note("synthetic %s profile, seed %d; paper uses the (retracted) AOL corpus — see DESIGN.md §2", r.cfg.Profile, r.cfg.Seed)
	t.Note("removed %d unique pairs (%d tuples) and %d emptied user logs", r.preStat.RemovedPairs, r.preStat.RemovedMass, r.preStat.RemovedUsers)
	return t, nil
}

// Table4 computes the maximum output size λ over the full (e^ε, δ) grid.
// Cells report the O-UMP LP optimum (what the paper's linprog reports);
// monotonicity in both axes and the plateau structure are the paper's
// headline shape.
func (r *Runner) Table4() (*Table, error) {
	if err := r.Prewarm(EExpGrid7, DeltaGrid7); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "table4",
		Title:  fmt.Sprintf("Maximum output size λ on e^ε and δ (|D| = %d)", r.pre.Size()),
		Header: append([]string{"e^ε \\ δ"}, formatFloats(DeltaGrid7)...),
	}
	for _, eExp := range EExpGrid7 {
		cells := make([]string, 0, len(DeltaGrid7))
		for _, delta := range DeltaGrid7 {
			plan, err := r.lambdaPlan(params(eExp, delta))
			if err != nil {
				return nil, err
			}
			cells = append(cells, fmt.Sprintf("%.0f", math.Floor(plan.RelaxationObjective)))
		}
		t.AddRow(fmt.Sprintf("%.3f", eExp), cells...)
	}
	t.Note("cells are the LP optimum of O-UMP; the integral released size is its floor after per-pair flooring")
	t.Note("paper's absolute λ values are unattainable under Theorem 1 (λ ≤ #users·budget since Σ_k ln t_ijk ≥ 1); shape targets are monotonicity and the min{ε, ln 1/(1−δ)} plateaus — see EXPERIMENTS.md")
	return t, nil
}

// fig3Config fixes the paper's Fig 3(a)/3(b) parameters: s = 1/500 and
// |O| ≈ 0.229·λ(2, 0.5) (the paper's |O| = 3000 against λ = 13088).
func (r *Runner) fig3Config() (minSupport float64, outputSize int, err error) {
	ref, err := r.referenceLambda()
	if err != nil {
		return 0, 0, err
	}
	return 1.0 / 500, int(0.229 * float64(ref)), nil
}

// Fig3a reports F-UMP Recall over e^ε for each δ in DeltaGrid4.
func (r *Runner) Fig3a() (*Table, error) {
	s, O, err := r.fig3Config()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig3a",
		Title:  fmt.Sprintf("F-UMP Recall on (ε, δ); s = 1/500, |O| = %d", O),
		Header: append([]string{"δ \\ e^ε"}, formatFloats(EExpGrid7)...),
	}
	for _, delta := range DeltaGrid4 {
		cells := make([]string, 0, len(EExpGrid7))
		for _, eExp := range EExpGrid7 {
			plan, effO, err := r.fumpPlan(params(eExp, delta), s, O)
			if err != nil {
				return nil, err
			}
			cells = append(cells, fmt.Sprintf("%.4f%s", r.planRecall(plan, s), clampMark(effO, O)))
		}
		t.AddRow(fmt.Sprintf("δ=%g", delta), cells...)
	}
	t.Note("recall rises with ε until ε = ln 1/(1−δ) saturates the budget, then stays flat (paper Fig 3a)")
	t.Note("* marks cells where λ < |O| forced a smaller output (the paper's corpus never hits this; ours does at tight budgets)")
	return t, nil
}

// clampMark flags cells whose requested |O| was clamped to λ.
func clampMark(effective, requested int) string {
	if effective < requested {
		return "*"
	}
	return ""
}

// Fig3b reports the F-UMP objective (sum of frequent-pair support
// distances) over the same grid as Fig3a.
func (r *Runner) Fig3b() (*Table, error) {
	s, O, err := r.fig3Config()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig3b",
		Title:  fmt.Sprintf("F-UMP sum of support distances on (ε, δ); s = 1/500, |O| = %d", O),
		Header: append([]string{"δ \\ e^ε"}, formatFloats(EExpGrid7)...),
	}
	for _, delta := range DeltaGrid4 {
		cells := make([]string, 0, len(EExpGrid7))
		for _, eExp := range EExpGrid7 {
			plan, effO, err := r.fumpPlan(params(eExp, delta), s, O)
			if err != nil {
				return nil, err
			}
			sum, _, _ := metrics.SupportDistances(r.pre, plan.Counts, s)
			cells = append(cells, fmt.Sprintf("%.4f%s", sum, clampMark(effO, O)))
		}
		t.AddRow(fmt.Sprintf("δ=%g", delta), cells...)
	}
	t.Note("inverse trend of Fig 3a among unclamped cells: distances shrink as the budget grows")
	t.Note("* marks cells clamped to λ < |O|; a clamped forced-size release can score worse than the empty release")
	return t, nil
}

// outputGrid returns the scaled |O| grid anchored at λ(2, 0.5).
func (r *Runner) outputGrid() ([]int, error) {
	ref, err := r.referenceLambda()
	if err != nil {
		return nil, err
	}
	out := make([]int, len(OutputFractions))
	for i, f := range OutputFractions {
		out[i] = int(f * float64(ref))
		if out[i] < 1 {
			out[i] = 1
		}
	}
	return out, nil
}

// planPrecision computes Equation 9's Precision on the plan supports: the
// fraction of output-frequent pairs that are also input-frequent.
func (r *Runner) planPrecision(plan *ump.Plan, minSupport float64) float64 {
	inFreq := metrics.FrequentPairs(r.pre, minSupport)
	outFreq, hit := 0, 0
	for i := 0; i < r.pre.NumPairs(); i++ {
		if plan.OutputSize == 0 || plan.Counts[i] == 0 {
			continue
		}
		if float64(plan.Counts[i])/float64(plan.OutputSize) >= minSupport {
			outFreq++
			if _, ok := inFreq[r.pre.Pair(i).Key()]; ok {
				hit++
			}
		}
	}
	if outFreq == 0 {
		return 1
	}
	return float64(hit) / float64(outFreq)
}

// Table5 reports Recall on (|O|, s) at e^ε = 2, δ = 0.5, with the measured
// minimum Precision across the grid in the notes (the paper reports
// Precision ≡ 1 in all its F-UMP experiments).
func (r *Runner) Table5() (*Table, error) {
	minPrecision := 1.0
	t, err := r.fumpGridTable("table5", "Recall on output size |O| and minimum support s (e^ε = 2, δ = 0.5)",
		func(plan *ump.Plan, s float64) string {
			if p := r.planPrecision(plan, s); p < minPrecision {
				minPrecision = p
			}
			return fmt.Sprintf("%.4f", r.planRecall(plan, s))
		})
	if err != nil {
		return nil, err
	}
	t.Note("measured minimum Precision across the grid: %.4f (paper reports Precision ≡ 1; small-|O| integer granularity can create spurious output-frequent pairs)", minPrecision)
	return t, nil
}

// Table6 reports the sum of support distances on (|O|, s) at e^ε=2, δ=0.5.
func (r *Runner) Table6() (*Table, error) {
	return r.fumpGridTable("table6", "Sum of frequent-pair support distances on |O| and s (e^ε = 2, δ = 0.5)",
		func(plan *ump.Plan, s float64) string {
			sum, _, _ := metrics.SupportDistances(r.pre, plan.Counts, s)
			return fmt.Sprintf("%.4f", sum)
		})
}

// Fig3c reports the average support distance on (s, |O|) at e^ε=2, δ=0.5.
func (r *Runner) Fig3c() (*Table, error) {
	return r.fumpGridTable("fig3c", "Average frequent-pair support distance on s and |O| (e^ε = 2, δ = 0.5)",
		func(plan *ump.Plan, s float64) string {
			_, avg, _ := metrics.SupportDistances(r.pre, plan.Counts, s)
			return fmt.Sprintf("%.6f", avg)
		})
}

func (r *Runner) fumpGridTable(id, title string, cell func(plan *ump.Plan, s float64) string) (*Table, error) {
	grid, err := r.outputGrid()
	if err != nil {
		return nil, err
	}
	p := params(2.0, 0.5)
	head := []string{"s \\ |O|"}
	for _, O := range grid {
		head = append(head, fmt.Sprint(O))
	}
	t := &Table{ID: id, Title: title, Header: head}
	for _, s := range SupportGrid {
		cells := make([]string, 0, len(grid))
		for _, O := range grid {
			plan, _, err := r.fumpPlan(p, s, O)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell(plan, s))
		}
		freq := len(metrics.FrequentPairs(r.pre, s))
		t.AddRow(fmt.Sprintf("1/%d (|S0|=%d)", int(1/s+0.5), freq), cells...)
	}
	t.Note("|O| grid = paper's {3000..8000} rescaled by λ(2, 0.5): fractions %v", OutputFractions)
	return t, nil
}

// speDiversity returns the SPE retained-diversity percentage, cached by
// budget.
func (r *Runner) speDiversity(p dp.Params) (float64, error) {
	key := budgetKey(p)
	r.mu.Lock()
	pct, ok := r.spePct[key]
	r.mu.Unlock()
	if ok {
		return pct, nil
	}
	plan, err := ump.Diversity(r.pre, p, ump.Options{Solver: "spe"})
	if err != nil {
		return 0, err
	}
	pct = 100 * metrics.RetainedDiversity(r.pre, plan.Counts)
	r.mu.Lock()
	r.spePct[key] = pct
	r.mu.Unlock()
	return pct, nil
}

// Fig4 reports the maximum retained query-url pair percentage (D-UMP via
// the SPE heuristic) over the (e^ε, δ) grid of the paper's Figure 4.
func (r *Runner) Fig4() (*Table, error) {
	t := &Table{
		ID:     "fig4",
		Title:  "Maximum retained query-url pair diversity %% via SPE on (ε, δ)",
		Header: append([]string{"δ \\ e^ε"}, formatFloats(EExpGrid7)...),
	}
	for _, delta := range DeltaGrid4 {
		cells := make([]string, 0, len(EExpGrid7))
		for _, eExp := range EExpGrid7 {
			pct, err := r.speDiversity(params(eExp, delta))
			if err != nil {
				return nil, err
			}
			cells = append(cells, fmt.Sprintf("%.1f%%", pct))
		}
		t.AddRow(fmt.Sprintf("δ=%g", delta), cells...)
	}
	t.Note("same saturation structure as Fig 3a; diversity is capped well below 100%% by Theorem 1")
	return t, nil
}

// solverSet returns the Table 7 lineup with experiment-budgeted options.
func (r *Runner) solverSet() []bip.Solver {
	return []bip.Solver{
		bip.SPE{},
		bip.SPEViolated{},
		bip.BranchBound{NodeLimit: r.cfg.BBNodes},
		bip.Rounding{},
		bip.Greedy{},
		bip.FeasPump{MaxIter: r.cfg.FeasPumpIter},
	}
}

// bipProblem assembles the D-UMP BIP for the given parameters.
func (r *Runner) bipProblem(p dp.Params) (*bip.Problem, error) {
	cons, err := dp.Build(r.pre, p)
	if err != nil {
		return nil, err
	}
	prob := &bip.Problem{
		NumCols: r.pre.NumPairs(),
		Rows:    make([][]bip.Term, len(cons.Rows)),
		RHS:     make([]float64, len(cons.Rows)),
	}
	for k, row := range cons.Rows {
		prob.RHS[k] = cons.Budget
		terms := make([]bip.Term, len(row.Terms))
		for i, term := range row.Terms {
			terms[i] = bip.Term{Col: term.Pair, Coef: term.Coef}
		}
		prob.Rows[k] = terms
	}
	return prob, nil
}

// solverComparison runs every solver over a parameter axis, returning
// retained-diversity percentages.
func (r *Runner) solverComparison(id, title, axisLabel string, axis []float64, paramsOf func(float64) dp.Params) (*Table, error) {
	head := []string{"solver \\ " + axisLabel}
	for _, v := range axis {
		head = append(head, fmt.Sprintf("%g", v))
	}
	t := &Table{ID: id, Title: title, Header: head}
	type cellKey struct {
		solver string
		budget uint64
	}
	cache := map[cellKey]float64{}
	for _, s := range r.solverSet() {
		cells := make([]string, 0, len(axis))
		for _, v := range axis {
			p := paramsOf(v)
			key := cellKey{s.Name(), budgetKey(p)}
			pct, ok := cache[key]
			if !ok {
				prob, err := r.bipProblem(p)
				if err != nil {
					return nil, err
				}
				sol, err := s.Solve(prob)
				if err != nil {
					return nil, err
				}
				pct = 100 * float64(sol.Objective) / float64(r.pre.NumPairs())
				cache[key] = pct
			}
			cells = append(cells, fmt.Sprintf("%.1f%%", pct))
		}
		t.AddRow(s.Name(), cells...)
	}
	t.Note("branchbound limited to %d nodes, feaspump to %d rounds (NEOS-default stand-ins; see DESIGN.md §2)", r.cfg.BBNodes, r.cfg.FeasPumpIter)
	return t, nil
}

// Table7a compares the BIP solvers across δ at e^ε = 2.
func (r *Runner) Table7a() (*Table, error) {
	return r.solverComparison("table7a",
		"Retained diversity %% of BIP solvers across δ (e^ε = 2)", "δ",
		DeltaGrid6, func(d float64) dp.Params { return params(2.0, d) })
}

// Table7b compares the BIP solvers across e^ε at δ = 0.1.
func (r *Runner) Table7b() (*Table, error) {
	return r.solverComparison("table7b",
		"Retained diversity %% of BIP solvers across e^ε (δ = 0.1)", "e^ε",
		EExpGrid6, func(e float64) dp.Params { return params(e, 0.1) })
}

// Fig5 times each BIP solver on the paper's D-UMP instance
// (e^ε = 1.7, δ = 10⁻³), reproducing the log-scale runtime comparison.
func (r *Runner) Fig5() (*Table, error) {
	p := params(1.7, 1e-3)
	prob, err := r.bipProblem(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig5",
		Title:  "BIP solver runtime for D-UMP (e^ε = 1.7, δ = 10⁻³)",
		Header: []string{"solver", "runtime", "retained"},
	}
	for _, s := range r.solverSet() {
		start := time.Now()
		sol, err := s.Solve(prob)
		if err != nil {
			return nil, err
		}
		t.AddRow(s.Name(), time.Since(start).Round(time.Microsecond).String(), fmt.Sprint(sol.Objective))
	}
	t.Note("paper reports SPE fastest by orders of magnitude on a log-scale axis; compare rows")
	return t, nil
}

// Fig6 averages the triplet DiffRatio histogram (Equation 10) over
// SampleReps sampled outputs, in two regimes:
//
//   - "release" rows: the actual differentially private F-UMP release at
//     the paper's parameters (e^ε = 2, δ = 0.5, s = 1/500) for the two |O|
//     anchors. Theorem 1 bounds λ ≤ #users · budget, so the release's
//     resolution 1/|O| is far coarser than any triplet's support and the
//     strict Equation-10 ratio saturates at 100% — a structural consequence
//     the paper's (unattainably large) λ values mask.
//   - "sampler" rows: the multinomial sampling step isolated from the count
//     plan, run at identity scale (x_ij = c_ij, the §3.2/Figure 1
//     illustration). This is what Figure 6 was designed to show: the
//     query-url-user histogram shape survives sampling. Triplets with
//     c_ijk ≥ 6 (above the sampler's own noise floor) are binned.
func (r *Runner) Fig6() (*Table, error) {
	ref, err := r.referenceLambda()
	if err != nil {
		return nil, err
	}
	p := params(2.0, 0.5)
	s := 1.0 / 500
	t := &Table{
		ID:     "fig6",
		Title:  "Average # of distinct triplets per DiffRatio bucket (sampled outputs)",
		Header: []string{"row \\ bucket", "0-10%", "10-20%", "20-30%", "30-40%", "40-50%", "50-60%", "60-70%", "70-80%", "80-90%", "90-100%+", "≤40% share"},
	}
	addRow := func(label string, sums []float64) {
		cells := make([]string, 0, 11)
		total := 0.0
		for _, v := range sums {
			total += v
		}
		cum, share40 := 0.0, 0.0
		for i, v := range sums {
			cells = append(cells, fmt.Sprintf("%.1f", v/float64(r.cfg.SampleReps)))
			cum += v
			if i == 3 && total > 0 {
				share40 = cum / total
			}
		}
		cells = append(cells, fmt.Sprintf("%.0f%%", 100*share40))
		t.AddRow(label, cells...)
	}

	// Release rows: strict Equation 10 on the DP release.
	for _, frac := range []float64{0.306, 0.458} { // paper's 4000, 6000 over λ=13088
		O := int(frac * float64(ref))
		if O < 1 {
			O = 1
		}
		plan, _, err := r.fumpPlan(p, s, O)
		if err != nil {
			return nil, err
		}
		sums := make([]float64, 10)
		g := rng.New(r.cfg.Seed + 17)
		for rep := 0; rep < r.cfg.SampleReps; rep++ {
			out, err := sampling.Output(g, r.pre, plan.Counts)
			if err != nil {
				return nil, err
			}
			for i, h := range metrics.TripletHistogram(r.pre, out, 10, s, 0) {
				sums[i] += float64(h)
			}
		}
		addRow(fmt.Sprintf("release |O|=%d", O), sums)
	}

	// Sampler rows: identity-scale multinomial sampling (x_ij = c_ij), the
	// paper's §3.2 shape-preservation property, Equation 10 and the
	// conditional share on triplets above the noise floor.
	identity := make([]int, r.pre.NumPairs())
	for i := range identity {
		identity[i] = r.pre.PairCount(i)
	}
	const noiseFloor = 6
	eq10 := make([]float64, 10)
	cond := make([]float64, 10)
	g := rng.New(r.cfg.Seed + 31)
	for rep := 0; rep < r.cfg.SampleReps; rep++ {
		out, err := sampling.Output(g, r.pre, identity)
		if err != nil {
			return nil, err
		}
		for i, h := range metrics.TripletHistogram(r.pre, out, 10, 0, noiseFloor) {
			eq10[i] += float64(h)
		}
		for i, h := range metrics.ConditionalTripletHistogram(r.pre, out, 10, 0, noiseFloor) {
			cond[i] += float64(h)
		}
	}
	addRow("sampler eq10", eq10)
	addRow("sampler cond", cond)

	t.Note("release rows: DP release at e^ε=2, δ=0.5, s=1/500, all frequent-pair triplets; Theorem 1's λ bound pins them to the last bucket (see EXPERIMENTS.md)")
	t.Note("sampler rows: identity-scale sampling (x_ij = c_ij, not a DP release), triplets with c_ijk ≥ %d; reproduces the paper's headline (most triplets below 40%%)", noiseFloor)
	t.Note("paper: ≈75%% (|O|=4000) and ≈90%% (|O|=6000) of triplets below 40%% DiffRatio")
	return t, nil
}

// Experiments lists every experiment ID in paper order.
func Experiments() []string {
	return []string{"table3", "table4", "fig3a", "fig3b", "fig3c", "table5", "table6", "fig4", "table7a", "table7b", "fig5", "fig6"}
}

// Run regenerates one experiment by ID.
func (r *Runner) Run(id string) (*Table, error) {
	switch id {
	case "table3":
		return r.Table3()
	case "table4":
		return r.Table4()
	case "fig3a":
		return r.Fig3a()
	case "fig3b":
		return r.Fig3b()
	case "fig3c":
		return r.Fig3c()
	case "table5":
		return r.Table5()
	case "table6":
		return r.Table6()
	case "fig4":
		return r.Fig4()
	case "table7a":
		return r.Table7a()
	case "table7b":
		return r.Table7b()
	case "fig5":
		return r.Fig5()
	case "fig6":
		return r.Fig6()
	case "frontier":
		return r.Frontier()
	case "combined-sweep":
		return r.CombinedSweep()
	case "querydiv":
		return r.QueryDiv()
	case "baseline-compare":
		return r.BaselineCompare()
	case "mechanism-frontier":
		return r.MechanismFrontier()
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %v and extensions %v)", id, Experiments(), ExtensionExperiments())
}

// RunAll regenerates every experiment in paper order.
func (r *Runner) RunAll() ([]*Table, error) {
	var out []*Table
	for _, id := range Experiments() {
		t, err := r.Run(id)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, t)
	}
	return out, nil
}

func formatFloats(vals []float64) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprintf("%g", v)
	}
	return out
}

// sortedBudgets is a test helper exposing the distinct budgets of a grid.
func sortedBudgets(eExps, deltas []float64) []float64 {
	seen := map[float64]bool{}
	for _, e := range eExps {
		for _, d := range deltas {
			seen[params(e, d).Budget()] = true
		}
	}
	out := make([]float64, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Float64s(out)
	return out
}
