// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on a synthetic AOL-like corpus: Table 3 (dataset
// characteristics), Table 4 (maximum output size λ), Figures 3(a)–3(c) and
// Tables 5–6 (F-UMP utility), Figure 4 and Tables 7(a)–7(b) (D-UMP
// diversity and the BIP solver comparison), Figure 5 (solver runtimes) and
// Figure 6 (triplet histogram difference ratios).
//
// Figures are rendered as tables (one row per series). Solves are cached by
// the merged privacy budget min{ε, ln 1/(1−δ)}, which the constraint system
// depends on exclusively — the paper's 7×7 grid collapses to a handful of
// distinct LP solves.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier, e.g. "table4" or "fig3a".
	ID string
	// Title restates the paper's caption.
	Title string
	// Header holds the column headings; Header[0] labels the row-label
	// column.
	Header []string
	// Rows holds one label + len(Header)-1 cells each.
	Rows []Row
	// Notes collect calibration or deviation remarks for EXPERIMENTS.md.
	Notes []string
}

// Row is one labeled table row.
type Row struct {
	Label string
	Cells []string
}

// AddRow appends a row.
func (t *Table) AddRow(label string, cells ...string) {
	t.Rows = append(t.Rows, Row{Label: label, Cells: cells})
}

// Note appends a note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render produces an aligned plain-text table.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", strings.ToUpper(t.ID), t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		if len(r.Label) > widths[0] {
			widths[0] = len(r.Label)
		}
		for i, c := range r.Cells {
			if i+1 < len(widths) && len(c) > widths[i+1] {
				widths[i+1] = len(c)
			}
		}
	}
	line := func(label string, cells []string) {
		fmt.Fprintf(&sb, "  %-*s", widths[0], label)
		for i, c := range cells {
			w := 0
			if i+1 < len(widths) {
				w = widths[i+1]
			}
			fmt.Fprintf(&sb, "  %*s", w, c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header[0], t.Header[1:])
	for _, r := range t.Rows {
		line(r.Label, r.Cells)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	return sb.String()
}
