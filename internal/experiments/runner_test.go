package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
	"time"
)

// tinyRunner builds a Runner on the tiny profile once per test binary.
func tinyRunner(t testing.TB) *Runner {
	t.Helper()
	r, err := NewRunner(Config{Profile: "tiny", Seed: 5, SampleReps: 3})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func cellFloat(t *testing.T, c string) float64 {
	t.Helper()
	c = strings.TrimSuffix(strings.TrimSuffix(c, "*"), "%")
	c = strings.TrimSuffix(c, "*")
	v, err := strconv.ParseFloat(c, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", c, err)
	}
	return v
}

func cellClamped(c string) bool { return strings.HasSuffix(c, "*") }

func TestNewRunnerDefaults(t *testing.T) {
	r, err := NewRunner(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.cfg.Profile != "small" || r.cfg.FeasPumpIter != 5 || r.cfg.BBNodes != 5 || r.cfg.SampleReps != 10 {
		t.Errorf("defaults not applied: %+v", r.cfg)
	}
	if _, err := NewRunner(Config{Profile: "bogus"}); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestTable3Shape(t *testing.T) {
	r := tinyRunner(t)
	tab, err := r.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("Table 3 rows = %d, want 5", len(tab.Rows))
	}
	// Preprocessing shrinks every characteristic.
	for _, row := range tab.Rows {
		raw := cellFloat(t, row.Cells[0])
		pre := cellFloat(t, row.Cells[1])
		if pre > raw {
			t.Errorf("%s: preprocessed %v > raw %v", row.Label, pre, raw)
		}
	}
	if !strings.Contains(tab.Render(), "TABLE3") {
		t.Error("Render missing table ID")
	}
}

func TestTable4MonotoneAndPlateaus(t *testing.T) {
	r := tinyRunner(t)
	tab, err := r.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(EExpGrid7) || len(tab.Rows[0].Cells) != len(DeltaGrid7) {
		t.Fatalf("grid shape %dx%d", len(tab.Rows), len(tab.Rows[0].Cells))
	}
	grid := make([][]float64, len(tab.Rows))
	for i, row := range tab.Rows {
		grid[i] = make([]float64, len(row.Cells))
		for j, c := range row.Cells {
			grid[i][j] = cellFloat(t, c)
		}
	}
	// λ must be monotone non-decreasing along both axes.
	for i := range grid {
		for j := 1; j < len(grid[i]); j++ {
			if grid[i][j] < grid[i][j-1]-1 { // -1 for LP floor noise
				t.Errorf("row %d: λ decreased %v -> %v", i, grid[i][j-1], grid[i][j])
			}
		}
	}
	for j := 0; j < len(grid[0]); j++ {
		for i := 1; i < len(grid); i++ {
			if grid[i][j] < grid[i-1][j]-1 {
				t.Errorf("col %d: λ decreased %v -> %v", j, grid[i-1][j], grid[i][j])
			}
		}
	}
	// Plateau along δ once ln 1/(1−δ) ≥ ε: for the smallest e^ε = 1.001
	// (ε ≈ 0.001), δ ≥ 0.01 gives identical budgets, hence identical λ.
	first := grid[0]
	for j := 3; j < len(first); j++ {
		if first[j] != first[2] {
			t.Errorf("row e^ε=1.001: expected plateau from δ=0.01, got %v", first)
		}
	}
	// Plateau along ε at δ = 1e-4: budget pinned to ln 1/(1−δ) for all
	// e^ε ≥ 1.01.
	for i := 2; i < len(grid); i++ {
		if grid[i][0] != grid[1][0] {
			t.Errorf("col δ=1e-4: expected plateau, got %v vs %v", grid[i][0], grid[1][0])
		}
	}
}

func TestBudgetCacheCollapsesGrid(t *testing.T) {
	r := tinyRunner(t)
	if _, err := r.Table4(); err != nil {
		t.Fatal(err)
	}
	distinct := sortedBudgets(EExpGrid7, DeltaGrid7)
	if len(r.lambdaCache) != len(distinct) {
		t.Errorf("λ cache has %d entries, want %d distinct budgets", len(r.lambdaCache), len(distinct))
	}
	if len(distinct) >= len(EExpGrid7)*len(DeltaGrid7) {
		t.Error("budget collapse ineffective")
	}
}

func TestFig3aRecallMonotoneInEps(t *testing.T) {
	r := tinyRunner(t)
	tab, err := r.Fig3a()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		prev := -1.0
		for j, c := range row.Cells {
			v := cellFloat(t, c)
			if v < prev-0.15 { // integral flooring can wobble slightly
				t.Errorf("%s: recall dropped at col %d: %v -> %v", row.Label, j, prev, v)
			}
			if v < 0 || v > 1 {
				t.Errorf("recall %v out of range", v)
			}
			prev = v
		}
	}
}

func TestFig3bDistancesShrinkWithBudget(t *testing.T) {
	r := tinyRunner(t)
	tab, err := r.Fig3b()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's trend (distances shrink as the budget grows) applies to
	// cells that run at the full requested |O|; clamped cells (λ < |O|)
	// solve a different, smaller problem and are excluded.
	for _, row := range tab.Rows {
		prev := -1.0
		for _, c := range row.Cells {
			if cellClamped(c) {
				continue
			}
			v := cellFloat(t, c)
			if prev >= 0 && v > prev+1e-9 {
				t.Errorf("%s: unclamped distance sum grew with budget: %v -> %v", row.Label, prev, v)
			}
			prev = v
		}
	}
}

func TestTables56Shape(t *testing.T) {
	r := tinyRunner(t)
	t5, err := r.Table5()
	if err != nil {
		t.Fatal(err)
	}
	t6, err := r.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != len(SupportGrid) || len(t6.Rows) != len(SupportGrid) {
		t.Fatal("support grid rows missing")
	}
	for _, row := range t5.Rows {
		for _, c := range row.Cells {
			v := cellFloat(t, c)
			if v < 0 || v > 1 {
				t.Errorf("recall %v out of range", v)
			}
		}
	}
	// Distances are non-negative and bounded by the frequent mass. The
	// paper's |O|-trend (sums grow with |O| at fixed s) needs |O| ≫ 1 per
	// frequent pair and is verified on the small profile in EXPERIMENTS.md,
	// not at this tiny scale where rounding noise dominates.
	for _, row := range t6.Rows {
		for _, c := range row.Cells {
			if v := cellFloat(t, c); v < 0 || math.IsNaN(v) {
				t.Errorf("table6 cell %q invalid", c)
			}
		}
	}
}

func TestFig4DiversityMonotone(t *testing.T) {
	r := tinyRunner(t)
	tab, err := r.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		prev := -1.0
		for _, c := range row.Cells {
			v := cellFloat(t, c)
			if v < 0 || v > 100 {
				t.Errorf("diversity %v%% out of range", v)
			}
			if v < prev-5 { // SPE is a heuristic; tolerate small wobble
				t.Errorf("%s: diversity dropped sharply: %v -> %v", row.Label, prev, v)
			}
			prev = v
		}
	}
}

func TestTable7SolverRows(t *testing.T) {
	r := tinyRunner(t)
	for _, fn := range []func() (*Table, error){r.Table7a, r.Table7b} {
		tab, err := fn()
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 6 {
			t.Fatalf("%s: %d solver rows, want 6", tab.ID, len(tab.Rows))
		}
		names := map[string]bool{}
		for _, row := range tab.Rows {
			names[row.Label] = true
			for _, c := range row.Cells {
				v := cellFloat(t, c)
				if v < 0 || v > 100 {
					t.Errorf("%s %s: diversity %v%% out of range", tab.ID, row.Label, v)
				}
			}
		}
		for _, want := range []string{"spe", "spe-violated", "branchbound", "rounding", "greedy", "feaspump"} {
			if !names[want] {
				t.Errorf("%s: missing solver row %q", tab.ID, want)
			}
		}
	}
}

func TestFig5RuntimeOrdering(t *testing.T) {
	r := tinyRunner(t)
	tab, err := r.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	times := map[string]float64{}
	for _, row := range tab.Rows {
		d, err := parseDuration(row.Cells[0])
		if err != nil {
			t.Fatalf("bad duration %q: %v", row.Cells[0], err)
		}
		times[row.Label] = d
	}
	// The paper's Figure 5 headline: SPE is far faster than the LP-based
	// solvers. Wall-clock comparisons are noisy at tiny scale, so only
	// require SPE ≤ the slowest LP-based solver.
	lpMax := math.Max(times["rounding"], math.Max(times["feaspump"], times["branchbound"]))
	if times["spe"] > lpMax {
		t.Errorf("spe (%.6fs) slower than slowest LP solver (%.6fs)", times["spe"], lpMax)
	}
}

func TestFig6SharesAndMass(t *testing.T) {
	r := tinyRunner(t)
	tab, err := r.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("Fig 6 rows = %d, want 2 release + 2 sampler rows", len(tab.Rows))
	}
	var samplerShares []float64
	for _, row := range tab.Rows {
		share := cellFloat(t, row.Cells[len(row.Cells)-1])
		if share < 0 || share > 100 {
			t.Errorf("≤40%% share %v out of range", share)
		}
		if strings.HasPrefix(row.Label, "sampler") {
			samplerShares = append(samplerShares, share)
		}
	}
	if len(samplerShares) != 2 {
		t.Fatalf("sampler rows = %d, want 2", len(samplerShares))
	}
	// The paper's headline: most triplets below 40% DiffRatio. The sampler
	// rows reproduce it (identity scale isolates the multinomial step).
	for _, share := range samplerShares {
		if share < 50 {
			t.Errorf("sampler ≤40%% share = %v%%, want the majority of triplets", share)
		}
	}
}

func TestRunAllAndUnknown(t *testing.T) {
	r := tinyRunner(t)
	tabs, err := r.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != len(Experiments()) {
		t.Fatalf("RunAll returned %d tables, want %d", len(tabs), len(Experiments()))
	}
	for i, id := range Experiments() {
		if tabs[i].ID != id {
			t.Errorf("table %d is %q, want %q", i, tabs[i].ID, id)
		}
		if tabs[i].Render() == "" {
			t.Errorf("%s renders empty", id)
		}
	}
	if _, err := r.Run("table99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// parseDuration converts Go duration strings (e.g. "1.5ms") to seconds.
func parseDuration(s string) (float64, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	return d.Seconds(), nil
}
