package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestFrontierMonotone(t *testing.T) {
	r := tinyRunner(t)
	tab, err := r.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("frontier rows = %d, want 5", len(tab.Rows))
	}
	prev := -1.0
	for _, row := range tab.Rows {
		epsStar, err := strconv.ParseFloat(row.Cells[1], 64)
		if err != nil {
			t.Fatalf("bad ε cell %q", row.Cells[1])
		}
		if epsStar < prev-0.05 {
			t.Errorf("frontier ε* not monotone: %g after %g", epsStar, prev)
		}
		if epsStar > prev {
			prev = epsStar
		}
	}
}

func TestCombinedSweepShrinksRelease(t *testing.T) {
	r := tinyRunner(t)
	tab, err := r.CombinedSweep()
	if err != nil {
		t.Fatal(err)
	}
	first, err := strconv.Atoi(tab.Rows[0].Cells[0])
	if err != nil {
		t.Fatal(err)
	}
	last, err := strconv.Atoi(tab.Rows[len(tab.Rows)-1].Cells[0])
	if err != nil {
		t.Fatal(err)
	}
	if last > first+1 {
		t.Errorf("release grew from %d to %d under a heavier distance weight", first, last)
	}
}

func TestQueryDivDominatesSPEQueries(t *testing.T) {
	r := tinyRunner(t)
	tab, err := r.QueryDiv()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		speQ, err := strconv.Atoi(row.Cells[1])
		if err != nil {
			t.Fatal(err)
		}
		qump, err := strconv.Atoi(row.Cells[2])
		if err != nil {
			t.Fatal(err)
		}
		if qump < speQ {
			t.Errorf("e^ε=%s: Q-UMP queries %d < SPE queries %d", row.Label, qump, speQ)
		}
	}
}

func TestMechanismFrontierCoversRegistry(t *testing.T) {
	r := tinyRunner(t)
	tab, err := r.MechanismFrontier()
	if err != nil {
		t.Fatal(err)
	}
	perMech := map[string]int{}
	for _, row := range tab.Rows {
		perMech[row.Label]++
	}
	for _, name := range []string{"ump", "laplace", "zealous", "localdp"} {
		if perMech[name] != 4 {
			t.Errorf("mechanism %s has %d frontier rows, want 4 (one per e^ε)", name, perMech[name])
		}
	}
	// localdp declares a pure-ε cost: its δ column must be 0 on every row.
	for _, row := range tab.Rows {
		if row.Label == "localdp" && row.Cells[4] != "0" {
			t.Errorf("localdp cost δ = %q, want 0", row.Cells[4])
		}
	}
}

func TestBaselineCompareIteratesRegistry(t *testing.T) {
	r := tinyRunner(t)
	tab, err := r.BaselineCompare()
	if err != nil {
		t.Fatal(err)
	}
	// 3 budgets × (F-UMP + every registered aggregate mechanism).
	want := 3 * 4
	if len(tab.Rows) != want {
		t.Fatalf("baseline-compare rows = %d, want %d", len(tab.Rows), want)
	}
	for _, row := range tab.Rows {
		if strings.HasPrefix(row.Label, "F-UMP") {
			if row.Cells[3] != "yes" {
				t.Errorf("%s: per-user analysis = %q, want yes", row.Label, row.Cells[3])
			}
		} else if row.Cells[3] != "no" {
			t.Errorf("%s: per-user analysis = %q, want no (aggregate release)", row.Label, row.Cells[3])
		}
	}
}

func TestRunAllWithExtensions(t *testing.T) {
	r := tinyRunner(t)
	tabs, err := r.RunAllWithExtensions()
	if err != nil {
		t.Fatal(err)
	}
	want := len(Experiments()) + len(ExtensionExperiments())
	if len(tabs) != want {
		t.Fatalf("tables = %d, want %d", len(tabs), want)
	}
	seen := map[string]bool{}
	for _, tab := range tabs {
		seen[tab.ID] = true
		if !strings.Contains(tab.Render(), strings.ToUpper(tab.ID)) {
			t.Errorf("%s render missing its ID", tab.ID)
		}
	}
	for _, id := range ExtensionExperiments() {
		if !seen[id] {
			t.Errorf("extension %s missing from RunAllWithExtensions", id)
		}
	}
}
