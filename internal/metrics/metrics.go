// Package metrics implements the paper's evaluation measures: pair support
// and frequent-pair extraction (§5.2), Precision and Recall of frequent
// pairs (Equation 9), the sum/average of support distances (Equation 5,
// Figures 3(b)/3(c), Table 6), the retained-diversity percentage (Figure 4,
// Table 7) and the input/output triplet histogram difference ratio
// (Equation 10, Figure 6).
package metrics

import (
	"fmt"
	"math"

	"dpslog/internal/searchlog"
)

// Support is the relative frequency count/size; the support of pair (q,u)
// in log D is c_ij/|D|.
func Support(count, size int) float64 {
	if size == 0 {
		return 0
	}
	return float64(count) / float64(size)
}

// FrequentSet maps the frequent pairs of a log to their support.
type FrequentSet map[searchlog.PairKey]float64

// FrequentPairs extracts the pairs with support ≥ s from the log.
func FrequentPairs(l *searchlog.Log, s float64) FrequentSet {
	out := FrequentSet{}
	size := l.Size()
	for i := 0; i < l.NumPairs(); i++ {
		p := l.Pair(i)
		if sup := Support(p.Total, size); sup >= s {
			out[p.Key()] = sup
		}
	}
	return out
}

// PrecisionRecall computes Equation 9 between the input's frequent set S0
// and the output's frequent set S:
//
//	Precision = |S0 ∩ S| / |S|,  Recall = |S0 ∩ S| / |S0|.
//
// An empty S yields Precision 1 (no false positives were emitted); an empty
// S0 yields Recall 1.
func PrecisionRecall(s0, s FrequentSet) (precision, recall float64) {
	inter := 0
	for key := range s {
		if _, ok := s0[key]; ok {
			inter++
		}
	}
	precision, recall = 1, 1
	if len(s) > 0 {
		precision = float64(inter) / float64(len(s))
	}
	if len(s0) > 0 {
		recall = float64(inter) / float64(len(s0))
	}
	return precision, recall
}

// SupportDistances evaluates the F-UMP objective (Equation 5) for a plan of
// output counts: Σ over the input's frequent pairs of |x_ij/|O| − c_ij/|D||,
// with |O| the plan's total. It returns the sum, the average per frequent
// pair, and the number of frequent pairs. A zero-size plan measures each
// frequent pair's full input support.
func SupportDistances(in *searchlog.Log, counts []int, minSupport float64) (sum, avg float64, frequent int) {
	if len(counts) != in.NumPairs() {
		panic(fmt.Sprintf("metrics: %d counts for %d pairs", len(counts), in.NumPairs()))
	}
	outSize := 0
	for _, x := range counts {
		outSize += x
	}
	inSize := in.Size()
	for i := 0; i < in.NumPairs(); i++ {
		supIn := Support(in.Pair(i).Total, inSize)
		if supIn < minSupport {
			continue
		}
		frequent++
		sum += math.Abs(Support(counts[i], outSize) - supIn)
	}
	if frequent > 0 {
		avg = sum / float64(frequent)
	}
	return sum, avg, frequent
}

// RetainedDiversity is the Figure-4 measure: the fraction of the
// (preprocessed) input's distinct pairs that appear in the output with a
// positive count.
func RetainedDiversity(in *searchlog.Log, counts []int) float64 {
	if in.NumPairs() == 0 {
		return 0
	}
	kept := 0
	for _, x := range counts {
		if x > 0 {
			kept++
		}
	}
	return float64(kept) / float64(in.NumPairs())
}

// DiffRatio is Equation 10 for one triplet: the relative deviation of the
// output support of (q_i, u_j, s_k) from its input support,
// |x*_ijk/|O| − c_ijk/|D|| / (c_ijk/|D|).
func DiffRatio(xijk, outSize, cijk, inSize int) float64 {
	inSup := Support(cijk, inSize)
	if inSup == 0 {
		return math.Inf(1)
	}
	return math.Abs(Support(xijk, outSize)-inSup) / inSup
}

// TripletHistogram bins the DiffRatio of every input triplet whose pair is
// retained in the output (x_ij > 0) into `buckets` equal bins spanning
// [0, 100%]; ratios ≥ 1 land in the last bin, mirroring Figure 6's X axis.
// minSupport > 0 restricts to triplets of input-frequent pairs, matching the
// paper's remark that triplets of infrequent pairs can be ignored.
// minCount > 0 additionally restricts to triplets with c_ijk ≥ minCount —
// triplets below the release's resolution (c_ijk/|D| ≪ 1/|O|) are
// structurally pinned to the last bin and can be excluded with it.
func TripletHistogram(in, out *searchlog.Log, buckets int, minSupport float64, minCount int) []int {
	if buckets <= 0 {
		buckets = 10
	}
	hist := make([]int, buckets)
	inSize, outSize := in.Size(), out.Size()
	for i := 0; i < in.NumPairs(); i++ {
		p := in.Pair(i)
		oi := out.PairIndex(p.Key())
		if oi < 0 {
			continue // pair not retained
		}
		if minSupport > 0 && Support(p.Total, inSize) < minSupport {
			continue
		}
		for _, e := range p.Entries {
			if e.Count < minCount {
				continue
			}
			id := in.User(e.User).ID
			xijk := 0
			if ok := out.UserIndex(id); ok >= 0 {
				xijk = out.TripletCount(oi, ok)
			}
			r := DiffRatio(xijk, outSize, e.Count, inSize)
			bin := int(r * float64(buckets))
			if bin >= buckets {
				bin = buckets - 1
			}
			hist[bin]++
		}
	}
	return hist
}

// ConditionalTripletHistogram bins the *conditional* support deviation of
// every retained triplet: |x_ijk/x_ij − c_ijk/c_ij| / (c_ijk/c_ij), i.e. the
// user's share of the pair in the output versus the input. This is the
// scale-free counterpart of Equation 10: it isolates the multinomial
// sampler's shape-preservation property (§3.2) from the |O|/|D| scale
// mismatch, and is reported alongside the strict Equation-10 histogram in
// the Figure 6 reproduction (see EXPERIMENTS.md).
func ConditionalTripletHistogram(in, out *searchlog.Log, buckets int, minSupport float64, minCount int) []int {
	if buckets <= 0 {
		buckets = 10
	}
	hist := make([]int, buckets)
	inSize := in.Size()
	for i := 0; i < in.NumPairs(); i++ {
		p := in.Pair(i)
		oi := out.PairIndex(p.Key())
		if oi < 0 {
			continue
		}
		if minSupport > 0 && Support(p.Total, inSize) < minSupport {
			continue
		}
		xij := out.PairCount(oi)
		for _, e := range p.Entries {
			if e.Count < minCount {
				continue
			}
			id := in.User(e.User).ID
			xijk := 0
			if ok := out.UserIndex(id); ok >= 0 {
				xijk = out.TripletCount(oi, ok)
			}
			inShare := float64(e.Count) / float64(p.Total)
			outShare := 0.0
			if xij > 0 {
				outShare = float64(xijk) / float64(xij)
			}
			r := math.Abs(outShare-inShare) / inShare
			bin := int(r * float64(buckets))
			if bin >= buckets {
				bin = buckets - 1
			}
			hist[bin]++
		}
	}
	return hist
}

// HistogramShare converts a histogram to cumulative shares: share[i] is the
// fraction of triplets in bins 0..i. Used to assert Figure 6's headline
// ("the difference ratio of ~75–90% of triplets is below 40%").
func HistogramShare(hist []int) []float64 {
	total := 0
	for _, h := range hist {
		total += h
	}
	out := make([]float64, len(hist))
	cum := 0
	for i, h := range hist {
		cum += h
		if total > 0 {
			out[i] = float64(cum) / float64(total)
		}
	}
	return out
}
