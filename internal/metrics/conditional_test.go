package metrics

import (
	"testing"

	"dpslog/internal/searchlog"
)

func TestConditionalTripletHistogramIdentity(t *testing.T) {
	in := fixture(t)
	// Comparing a log against itself: every user's share of each pair is
	// unchanged, so all triplets land in bin 0 regardless of scale.
	hist := ConditionalTripletHistogram(in, in, 10, 0, 0)
	if hist[0] != 6 {
		t.Errorf("identity bin0 = %d, want 6", hist[0])
	}
	for b := 1; b < 10; b++ {
		if hist[b] != 0 {
			t.Errorf("identity bin%d = %d, want 0", b, hist[b])
		}
	}
}

func TestConditionalScaleFree(t *testing.T) {
	in := fixture(t)
	// Halving every count preserves every conditional share exactly, unlike
	// the strict Equation-10 ratio which compares absolute supports.
	half := buildLog(t, []searchlog.Record{
		{User: "a", Query: "google", URL: "g.com", Count: 3},
		{User: "b", Query: "google", URL: "g.com", Count: 2},
		{User: "a", Query: "book", URL: "a.com", Count: 1},
		{User: "c", Query: "book", URL: "a.com", Count: 2},
		{User: "b", Query: "car", URL: "k.com", Count: 1},
		{User: "c", Query: "car", URL: "k.com", Count: 1},
	})
	hist := ConditionalTripletHistogram(in, half, 10, 0, 0)
	share := HistogramShare(hist)
	if share[3] < 0.99 {
		t.Errorf("halved log: ≤40%% share = %g, want ~1", share[3])
	}
}

func TestConditionalDroppedUserLandsInLastBin(t *testing.T) {
	in := fixture(t)
	// b vanishes from google: b's triplet share goes 0.4 → 0 (ratio 1).
	out := buildLog(t, []searchlog.Record{
		{User: "a", Query: "google", URL: "g.com", Count: 6},
	})
	hist := ConditionalTripletHistogram(in, out, 10, 0, 0)
	if hist[9] == 0 {
		t.Error("dropped user's triplet not in the last bin")
	}
	// a's share rose 0.6 → 1.0 (ratio 0.667 → bin 6).
	if hist[6] == 0 {
		t.Error("inflated share triplet missing from bin 6")
	}
}

func TestConditionalMinCountFilter(t *testing.T) {
	in := fixture(t)
	// Only triplets with c_ijk ≥ 4 qualify: google@a (6), google@b (4).
	hist := ConditionalTripletHistogram(in, in, 10, 0, 4)
	total := 0
	for _, h := range hist {
		total += h
	}
	if total != 2 {
		t.Errorf("filtered mass = %d, want 2", total)
	}
}

func TestConditionalMinSupportFilter(t *testing.T) {
	in := fixture(t)
	// s = 0.25 keeps google (.5) and book (.3): 4 triplets.
	hist := ConditionalTripletHistogram(in, in, 10, 0.25, 0)
	total := 0
	for _, h := range hist {
		total += h
	}
	if total != 4 {
		t.Errorf("support-filtered mass = %d, want 4", total)
	}
}

func TestConditionalDefaultBuckets(t *testing.T) {
	in := fixture(t)
	if got := len(ConditionalTripletHistogram(in, in, 0, 0, 0)); got != 10 {
		t.Errorf("default buckets = %d, want 10", got)
	}
}

func TestConditionalMissingPairSkipped(t *testing.T) {
	in := fixture(t)
	out := buildLog(t, []searchlog.Record{
		{User: "a", Query: "book", URL: "a.com", Count: 3},
		{User: "c", Query: "book", URL: "a.com", Count: 3},
	})
	hist := ConditionalTripletHistogram(in, out, 10, 0, 0)
	total := 0
	for _, h := range hist {
		total += h
	}
	// google and car pairs absent from the output: only book's 2 triplets.
	if total != 2 {
		t.Errorf("mass = %d, want 2 (missing pairs skipped)", total)
	}
}

func TestRetainedDiversityEmptyLog(t *testing.T) {
	empty, err := searchlog.FromRecords(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := RetainedDiversity(empty, nil); got != 0 {
		t.Errorf("empty-log diversity = %g, want 0", got)
	}
}
