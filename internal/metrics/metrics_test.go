package metrics

import (
	"math"
	"testing"

	"dpslog/internal/searchlog"
)

func buildLog(t testing.TB, recs []searchlog.Record) *searchlog.Log {
	t.Helper()
	l, err := searchlog.FromRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func fixture(t testing.TB) *searchlog.Log {
	// Size 20: google 10 (sup .5), book 6 (.3), car 4 (.2).
	return buildLog(t, []searchlog.Record{
		{User: "a", Query: "google", URL: "g.com", Count: 6},
		{User: "b", Query: "google", URL: "g.com", Count: 4},
		{User: "a", Query: "book", URL: "a.com", Count: 3},
		{User: "c", Query: "book", URL: "a.com", Count: 3},
		{User: "b", Query: "car", URL: "k.com", Count: 2},
		{User: "c", Query: "car", URL: "k.com", Count: 2},
	})
}

func TestSupport(t *testing.T) {
	if got := Support(5, 20); got != 0.25 {
		t.Errorf("Support(5,20) = %g, want 0.25", got)
	}
	if got := Support(5, 0); got != 0 {
		t.Errorf("Support(5,0) = %g, want 0", got)
	}
}

func TestFrequentPairs(t *testing.T) {
	l := fixture(t)
	fs := FrequentPairs(l, 0.25)
	if len(fs) != 2 {
		t.Fatalf("frequent pairs = %d, want 2 (google, book)", len(fs))
	}
	if sup := fs[searchlog.PairKey{Query: "google", URL: "g.com"}]; sup != 0.5 {
		t.Errorf("google support = %g, want 0.5", sup)
	}
	if _, ok := fs[searchlog.PairKey{Query: "car", URL: "k.com"}]; ok {
		t.Error("car (support .2) wrongly frequent at s=.25")
	}
	if got := len(FrequentPairs(l, 0.9)); got != 0 {
		t.Errorf("frequent at s=.9 = %d, want 0", got)
	}
}

func TestPrecisionRecall(t *testing.T) {
	g := searchlog.PairKey{Query: "google", URL: "g.com"}
	b := searchlog.PairKey{Query: "book", URL: "a.com"}
	c := searchlog.PairKey{Query: "car", URL: "k.com"}
	s0 := FrequentSet{g: .5, b: .3}
	s := FrequentSet{g: .4, c: .3}
	p, r := PrecisionRecall(s0, s)
	if p != 0.5 {
		t.Errorf("precision = %g, want 0.5", p)
	}
	if r != 0.5 {
		t.Errorf("recall = %g, want 0.5", r)
	}
	p, r = PrecisionRecall(s0, FrequentSet{})
	if p != 1 || r != 0 {
		t.Errorf("empty S: precision %g recall %g, want 1, 0", p, r)
	}
	p, r = PrecisionRecall(FrequentSet{}, FrequentSet{})
	if p != 1 || r != 1 {
		t.Errorf("both empty: precision %g recall %g, want 1, 1", p, r)
	}
}

func TestSupportDistances(t *testing.T) {
	l := fixture(t)
	// Plan keeps supports identical: x proportional to c with |O| = 10.
	counts := make([]int, l.NumPairs())
	for i := 0; i < l.NumPairs(); i++ {
		counts[i] = l.Pair(i).Total / 2
	}
	sum, avg, freq := SupportDistances(l, counts, 0.25)
	if freq != 2 {
		t.Fatalf("frequent = %d, want 2", freq)
	}
	if sum > 1e-12 || avg > 1e-12 {
		t.Errorf("proportional plan distances sum=%g avg=%g, want 0", sum, avg)
	}
	// Dropping google entirely costs its support 0.5 plus book's shift:
	// |O| = 3+2? Build explicitly: zero google, keep book 3, car 2 → |O|=5.
	counts2 := make([]int, l.NumPairs())
	counts2[l.PairIndex(searchlog.PairKey{Query: "book", URL: "a.com"})] = 3
	counts2[l.PairIndex(searchlog.PairKey{Query: "car", URL: "k.com"})] = 2
	sum2, _, _ := SupportDistances(l, counts2, 0.25)
	// google: |0 − .5| = .5; book: |3/5 − .3| = .3. Sum = 0.8.
	if math.Abs(sum2-0.8) > 1e-12 {
		t.Errorf("sum = %g, want 0.8", sum2)
	}
	// All-zero plan: distance equals the input supports themselves.
	zero := make([]int, l.NumPairs())
	sum3, _, _ := SupportDistances(l, zero, 0.25)
	if math.Abs(sum3-0.8) > 1e-12 {
		t.Errorf("zero-plan sum = %g, want 0.8", sum3)
	}
}

func TestSupportDistancesPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	SupportDistances(fixture(t), []int{1}, 0.1)
}

func TestRetainedDiversity(t *testing.T) {
	l := fixture(t)
	counts := make([]int, l.NumPairs())
	if got := RetainedDiversity(l, counts); got != 0 {
		t.Errorf("empty plan diversity = %g, want 0", got)
	}
	counts[0] = 1
	counts[2] = 5
	if got := RetainedDiversity(l, counts); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("diversity = %g, want 2/3", got)
	}
}

func TestDiffRatio(t *testing.T) {
	// Input share 2/20 = .1, output share 1/10 = .1 → 0.
	if got := DiffRatio(1, 10, 2, 20); got > 1e-12 {
		t.Errorf("DiffRatio = %g, want 0", got)
	}
	// Output share 0 → ratio 1.
	if got := DiffRatio(0, 10, 2, 20); math.Abs(got-1) > 1e-12 {
		t.Errorf("DiffRatio zeroed = %g, want 1", got)
	}
	if got := DiffRatio(1, 10, 0, 20); !math.IsInf(got, 1) {
		t.Errorf("DiffRatio with zero input = %g, want +Inf", got)
	}
}

func TestTripletHistogram(t *testing.T) {
	in := fixture(t)
	// Output halves every count: all triplet shares preserved exactly.
	half := buildLog(t, []searchlog.Record{
		{User: "a", Query: "google", URL: "g.com", Count: 3},
		{User: "b", Query: "google", URL: "g.com", Count: 2},
		{User: "a", Query: "book", URL: "a.com", Count: 1},
		{User: "c", Query: "book", URL: "a.com", Count: 2},
		{User: "b", Query: "car", URL: "k.com", Count: 1},
		{User: "c", Query: "car", URL: "k.com", Count: 1},
	})
	hist := TripletHistogram(in, half, 10, 0, 0)
	total := 0
	for _, h := range hist {
		total += h
	}
	if total != 6 {
		t.Fatalf("histogram mass = %d, want 6 triplets", total)
	}
	// a@google: in .3, out .3 → bin 0. c@book: in .15, out .2 → ratio .333 →
	// bin 3. Verify low bins hold most mass.
	share := HistogramShare(hist)
	if share[3] < 0.99 {
		t.Errorf("share below 40%% = %g, want ~1 for the halved output", share[3])
	}
	// Restricting to frequent pairs (s=0.25) drops car's two triplets.
	histF := TripletHistogram(in, half, 10, 0.25, 0)
	totalF := 0
	for _, h := range histF {
		totalF += h
	}
	if totalF != 4 {
		t.Errorf("frequent-only histogram mass = %d, want 4", totalF)
	}
}

func TestTripletHistogramMissingPairAndUser(t *testing.T) {
	in := fixture(t)
	// Output drops the car pair and user c entirely.
	out := buildLog(t, []searchlog.Record{
		{User: "a", Query: "google", URL: "g.com", Count: 5},
		{User: "b", Query: "google", URL: "g.com", Count: 5},
		{User: "a", Query: "book", URL: "a.com", Count: 2},
	})
	hist := TripletHistogram(in, out, 10, 0, 0)
	total := 0
	for _, h := range hist {
		total += h
	}
	// car's 2 triplets skipped (pair absent); google a,b and book a,c = 4.
	if total != 4 {
		t.Fatalf("histogram mass = %d, want 4", total)
	}
	// book@c has x=0 → ratio 1 → last bin.
	if hist[9] == 0 {
		t.Error("zeroed triplet did not land in the last bin")
	}
}

func TestHistogramShareEmpty(t *testing.T) {
	share := HistogramShare([]int{0, 0})
	if share[0] != 0 || share[1] != 0 {
		t.Errorf("empty histogram share = %v, want zeros", share)
	}
}

func TestTripletHistogramDefaultBuckets(t *testing.T) {
	in := fixture(t)
	hist := TripletHistogram(in, in, 0, 0, 0)
	if len(hist) != 10 {
		t.Errorf("default buckets = %d, want 10", len(hist))
	}
	// Identical logs: everything in bin 0.
	if hist[0] != 6 {
		t.Errorf("identity comparison bin0 = %d, want 6", hist[0])
	}
}
