// Package rng provides the deterministic random number generation used by
// the sanitizer (multinomial user-ID sampling), the Laplace mechanism of
// §4.2, and the synthetic corpus generator (bounded Zipf variates). All
// randomness in the repository flows through this package so that every
// experiment is reproducible from a single seed.
package rng

import (
	"math"
	"math/rand/v2"
	"sort"
)

// RNG is a deterministic pseudo-random source. It wraps math/rand/v2's PCG
// so that streams are stable across runs and platforms for a fixed seed.
type RNG struct {
	r *rand.Rand
}

// New returns an RNG seeded with the given value.
func New(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))}
}

// Split derives an independent child stream; the parent advances by one
// draw. Useful for giving each pair's sampler its own stream.
func (g *RNG) Split() *RNG {
	return &RNG{r: rand.New(rand.NewPCG(g.r.Uint64(), 0xbf58476d1ce4e5b9))}
}

// Float64 returns a uniform variate in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform variate in [0, n).
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Int64N returns a uniform variate in [0, n).
func (g *RNG) Int64N(n int64) int64 { return g.r.Int64N(n) }

// Uint64 returns a uniform 64-bit variate.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Laplace returns a variate from the Laplace distribution with mean 0 and
// the given scale parameter b (density (1/2b)·exp(−|x|/b)), via inverse-CDF
// sampling. This is the noise distribution Lap(d/ε′) of §4.2.
func (g *RNG) Laplace(scale float64) float64 {
	return laplace(g.r.Float64(), scale)
}

// laplaceMinTail clamps the inverse-CDF argument away from zero. Float64
// draws lie on the 2⁻⁵³ grid, so the smallest nonzero value of 1±2u is
// 2⁻⁵²; clamping the u01 = 0 edge draw to the adjacent grid point keeps the
// tail magnitude at its legitimate maximum (≈ 36·scale) instead of −Inf.
const laplaceMinTail = 0x1p-52

// laplace maps a uniform u01 ∈ [0, 1) through the Laplace inverse CDF.
// The edge draw u01 = 0 (u = −0.5) would otherwise produce scale·log(0) =
// −Inf — an infinite noise value that poisons the §4.2 noisy counts and
// everything downstream of the feasibility projection.
func laplace(u01, scale float64) float64 {
	if scale <= 0 {
		return 0
	}
	u := u01 - 0.5 // [-0.5, 0.5)
	if u >= 0 {
		t := 1 - 2*u
		if t < laplaceMinTail {
			t = laplaceMinTail
		}
		return -scale * math.Log(t)
	}
	t := 1 + 2*u
	if t < laplaceMinTail {
		t = laplaceMinTail
	}
	return scale * math.Log(t)
}

// Zipf samples from a bounded Zipf distribution over {0, …, n−1} with
// exponent s > 0: P(k) ∝ 1/(k+1)^s. The cumulative table costs O(n) memory
// and each draw is O(log n); n up to a few hundred thousand is intended.
type Zipf struct {
	cdf []float64
	g   *RNG
}

// NewZipf builds a bounded Zipf sampler. It panics for n ≤ 0 or s ≤ 0, which
// indicate programmer error in generator profiles.
func NewZipf(g *RNG, s float64, n int) *Zipf {
	if n <= 0 || s <= 0 {
		panic("rng: NewZipf requires n > 0 and s > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -s)
		cdf[k] = sum
	}
	inv := 1 / sum
	for k := range cdf {
		cdf[k] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, g: g}
}

// Sample draws one rank.
func (z *Zipf) Sample() int {
	u := z.g.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the support size.
func (z *Zipf) N() int { return len(z.cdf) }
