// Package rng provides the deterministic random number generation used by
// the sanitizer (multinomial user-ID sampling), the Laplace mechanism of
// §4.2, and the synthetic corpus generator (bounded Zipf variates). All
// randomness in the repository flows through this package so that every
// experiment is reproducible from a single seed.
package rng

import (
	"math"
	"math/rand/v2"
	"sort"
)

// RNG is a deterministic pseudo-random source. It wraps math/rand/v2's PCG
// so that streams are stable across runs and platforms for a fixed seed.
type RNG struct {
	r *rand.Rand
}

// New returns an RNG seeded with the given value.
func New(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))}
}

// Split derives an independent child stream; the parent advances by one
// draw. Useful for giving each pair's sampler its own stream.
func (g *RNG) Split() *RNG {
	return &RNG{r: rand.New(rand.NewPCG(g.r.Uint64(), 0xbf58476d1ce4e5b9))}
}

// Float64 returns a uniform variate in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform variate in [0, n).
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Int64N returns a uniform variate in [0, n).
func (g *RNG) Int64N(n int64) int64 { return g.r.Int64N(n) }

// Uint64 returns a uniform 64-bit variate.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Laplace returns a variate from the Laplace distribution with mean 0 and
// the given scale parameter b (density (1/2b)·exp(−|x|/b)), via inverse-CDF
// sampling. This is the noise distribution Lap(d/ε′) of §4.2.
func (g *RNG) Laplace(scale float64) float64 {
	if scale <= 0 {
		return 0
	}
	u := g.r.Float64() - 0.5 // (-0.5, 0.5)
	if u >= 0 {
		return -scale * math.Log(1-2*u)
	}
	return scale * math.Log(1+2*u)
}

// Zipf samples from a bounded Zipf distribution over {0, …, n−1} with
// exponent s > 0: P(k) ∝ 1/(k+1)^s. The cumulative table costs O(n) memory
// and each draw is O(log n); n up to a few hundred thousand is intended.
type Zipf struct {
	cdf []float64
	g   *RNG
}

// NewZipf builds a bounded Zipf sampler. It panics for n ≤ 0 or s ≤ 0, which
// indicate programmer error in generator profiles.
func NewZipf(g *RNG, s float64, n int) *Zipf {
	if n <= 0 || s <= 0 {
		panic("rng: NewZipf requires n > 0 and s > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -s)
		cdf[k] = sum
	}
	inv := 1 / sum
	for k := range cdf {
		cdf[k] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, g: g}
}

// Sample draws one rank.
func (z *Zipf) Sample() int {
	u := z.g.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the support size.
func (z *Zipf) N() int { return len(z.cdf) }
