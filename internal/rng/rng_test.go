package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := New(8)
	same := true
	a2 := New(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestSplitIndependence(t *testing.T) {
	g := New(1)
	c1 := g.Split()
	c2 := g.Split()
	if c1.Uint64() == c2.Uint64() {
		// A single collision is possible but astronomically unlikely; check a
		// few more draws before failing.
		if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
			t.Error("split children look identical")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	g := New(2)
	for i := 0; i < 10000; i++ {
		v := g.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestIntNRange(t *testing.T) {
	g := New(3)
	seen := make([]bool, 5)
	for i := 0; i < 1000; i++ {
		v := g.IntN(5)
		if v < 0 || v >= 5 {
			t.Fatalf("IntN out of range: %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("value %d never drawn in 1000 trials", v)
		}
	}
}

func TestLaplaceMoments(t *testing.T) {
	g := New(4)
	const n = 200000
	scale := 2.0
	sum, sumAbs := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := g.Laplace(scale)
		sum += v
		sumAbs += math.Abs(v)
	}
	mean := sum / n
	meanAbs := sumAbs / n
	// Laplace(b): E[X] = 0, E|X| = b.
	if math.Abs(mean) > 0.05 {
		t.Errorf("Laplace mean = %g, want ~0", mean)
	}
	if math.Abs(meanAbs-scale) > 0.05 {
		t.Errorf("Laplace E|X| = %g, want ~%g", meanAbs, scale)
	}
}

func TestLaplaceZeroScale(t *testing.T) {
	g := New(5)
	if v := g.Laplace(0); v != 0 {
		t.Errorf("Laplace(0) = %g, want 0", v)
	}
	if v := g.Laplace(-1); v != 0 {
		t.Errorf("Laplace(-1) = %g, want 0", v)
	}
}

// TestLaplaceEdgeDrawFinite regresses the −Inf bug: a uniform draw of
// exactly 0 maps to u = −0.5 and, unclamped, to scale·log(0) = −Inf. The
// inverse CDF is exercised directly at both edges of the uniform grid and
// across it, since no practical seed search forces the PCG to emit the
// exact edge draw.
func TestLaplaceEdgeDrawFinite(t *testing.T) {
	for _, scale := range []float64{0.5, 1, 17.3} {
		v := laplace(0, scale) // the edge draw
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("laplace(0, %g) = %g, want finite", scale, v)
		}
		if v >= 0 {
			t.Errorf("laplace(0, %g) = %g, want the extreme negative tail", scale, v)
		}
		// The clamp pins the edge draw to the adjacent grid point's value:
		// scale·log(2⁻⁵²) = −52·ln2·scale.
		want := scale * math.Log(laplaceMinTail)
		if v != want {
			t.Errorf("laplace(0, %g) = %g, want %g", scale, v, want)
		}
		// Largest representable draw below 1 (positive tail) is finite too.
		hi := laplace(math.Nextafter(1, 0), scale)
		if math.IsInf(hi, 0) || math.IsNaN(hi) || hi <= 0 {
			t.Errorf("laplace(1⁻, %g) = %g, want finite positive", scale, hi)
		}
		// Symmetry of the two tails at matching grid offsets.
		if lo := laplace(0x1p-53, scale); !approxEq(-lo, laplace(1-0x1p-53, scale), 1e-12) {
			t.Errorf("tails asymmetric: %g vs %g", lo, laplace(1-0x1p-53, scale))
		}
	}
	// Median draw is exactly zero noise.
	if v := laplace(0.5, 3); v != 0 {
		t.Errorf("laplace(0.5, 3) = %g, want 0", v)
	}
}

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestLaplaceAlwaysFinite sweeps many seeds: no draw may ever be ±Inf/NaN.
func TestLaplaceAlwaysFinite(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		g := New(seed)
		for i := 0; i < 50000; i++ {
			if v := g.Laplace(4.2); math.IsInf(v, 0) || math.IsNaN(v) {
				t.Fatalf("seed %d draw %d: non-finite Laplace noise %g", seed, i, v)
			}
		}
	}
}

// TestLaplaceExtremeEpsilonFinite is the regression anchor cited by the
// rngdiscipline analyzer (internal/analysis): the reason all noise must be
// drawn through this package. The Laplace scale is sensitivity/ε, so the
// table covers ε from vanishingly small (scale 1e300, where an unclamped
// tail draw would overflow to −Inf) to astronomically large (scale 1e-300,
// where naive arithmetic underflows to denormals). Across a million seeded
// samples at each scale no draw may be ±Inf or NaN, and at nonzero scale
// noise must not be identically zero (the clamp must not flatten the
// distribution).
func TestLaplaceExtremeEpsilonFinite(t *testing.T) {
	const samples = 1_000_000
	cases := []struct {
		name  string
		scale float64 // sensitivity/ε
	}{
		{"eps=1e300", 1e-300},
		{"eps=1e10", 1e-10},
		{"eps=1", 1},
		{"eps=1e-10", 1e10},
		{"eps=1e-300", 1e300},
	}
	for i, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			g := New(uint64(0xd1f5 + i))
			sawNonZero := false
			for n := 0; n < samples; n++ {
				v := g.Laplace(tc.scale)
				if math.IsInf(v, 0) || math.IsNaN(v) {
					t.Fatalf("scale %g draw %d: non-finite Laplace noise %g", tc.scale, n, v)
				}
				if v != 0 {
					sawNonZero = true
				}
			}
			if !sawNonZero {
				t.Errorf("scale %g: all %d draws were exactly zero; clamp flattened the distribution", tc.scale, samples)
			}
		})
	}
}

func TestZipfDistribution(t *testing.T) {
	g := New(6)
	n := 50
	z := NewZipf(g, 1.0, n)
	if z.N() != n {
		t.Fatalf("N = %d, want %d", z.N(), n)
	}
	const draws = 200000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		k := z.Sample()
		if k < 0 || k >= n {
			t.Fatalf("sample %d out of range", k)
		}
		counts[k]++
	}
	// Rank 0 must dominate rank 9 roughly 10:1 for s=1.
	ratio := float64(counts[0]) / float64(counts[9]+1)
	if ratio < 6 || ratio > 16 {
		t.Errorf("P(0)/P(9) = %g, want ≈10", ratio)
	}
	// Monotone non-increasing in expectation; allow sampling noise by
	// comparing widely separated ranks.
	if counts[0] <= counts[20] {
		t.Errorf("Zipf head %d not heavier than rank 20 (%d)", counts[0], counts[20])
	}
}

func TestZipfPanics(t *testing.T) {
	g := New(7)
	for _, tc := range []struct {
		s float64
		n int
	}{{0, 5}, {1, 0}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(s=%g, n=%d) did not panic", tc.s, tc.n)
				}
			}()
			NewZipf(g, tc.s, tc.n)
		}()
	}
}
