package dpslog

// Integration and property tests across the full pipeline: random corpora
// through every objective, auditing every release, exercising the exact
// Definition-2 checker on enumerable logs, and injecting failures to prove
// the audit actually rejects bad plans.

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dpslog/internal/dp"
)

// randomCorpus builds a random small log with guaranteed shared pairs.
func randomCorpus(seed uint64) (*Log, error) {
	r := rand.New(rand.NewPCG(seed, 99))
	var recs []Record
	users := 4 + r.IntN(8)
	queries := 3 + r.IntN(8)
	for u := 0; u < users; u++ {
		n := 2 + r.IntN(8)
		for i := 0; i < n; i++ {
			q := r.IntN(queries)
			recs = append(recs, Record{
				User:  string(rune('A' + u)),
				Query: string(rune('a' + q)),
				URL:   string(rune('p' + q%4)),
				Count: 1 + r.IntN(5),
			})
		}
	}
	return NewLog(recs)
}

// TestQuickEveryReleaseAudits: for random corpora, parameters and
// objectives, every release must (a) pass the Theorem-1 audit, (b) have
// identical schema, (c) contain only users/pairs from the preprocessed
// input, (d) respect the per-pair input-count cap.
func TestQuickEveryReleaseAudits(t *testing.T) {
	objectives := []Objective{ObjectiveOutputSize, ObjectiveFrequent, ObjectiveDiversity, ObjectiveQueryDiversity, ObjectiveCombined}
	f := func(seed uint64, eExpRaw, deltaRaw uint8, objRaw uint8) bool {
		in, err := randomCorpus(seed)
		if err != nil {
			return false
		}
		eExp := 1.01 + float64(eExpRaw%200)/100  // 1.01 .. 3.0
		delta := 0.05 + float64(deltaRaw%90)/100 // 0.05 .. 0.94
		obj := objectives[int(objRaw)%len(objectives)]
		opts := Options{Epsilon: math.Log(eExp), Delta: delta, Objective: obj, Seed: seed}
		if obj == ObjectiveFrequent || obj == ObjectiveCombined {
			opts.MinSupport = 0.05
		}
		s, err := New(opts)
		if err != nil {
			return false
		}
		res, err := s.Sanitize(in)
		if err != nil {
			t.Logf("seed %d obj %v: %v", seed, obj, err)
			return false
		}
		if err := VerifyCounts(res.Preprocessed, opts.Epsilon, opts.Delta, res.Plan.Counts); err != nil {
			t.Logf("audit: %v", err)
			return false
		}
		if res.Output.Size() != res.Plan.OutputSize {
			return false
		}
		for i := 0; i < res.Output.NumPairs(); i++ {
			key := res.Output.Pair(i).Key()
			pi := res.Preprocessed.PairIndex(key)
			if pi < 0 {
				return false
			}
			if res.Output.PairCount(i) > res.Preprocessed.PairCount(pi) {
				return false
			}
		}
		for k := 0; k < res.Output.NumUsers(); k++ {
			if res.Preprocessed.UserIndex(res.Output.User(k).ID) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickBreachBoundsHold: the closed-form per-user breach probability
// and worst-case ratio of every release respect (ε, δ).
func TestQuickBreachBoundsHold(t *testing.T) {
	f := func(seed uint64, deltaRaw uint8) bool {
		in, err := randomCorpus(seed)
		if err != nil {
			return false
		}
		delta := 0.05 + float64(deltaRaw%90)/100
		opts := Options{Epsilon: math.Log(2), Delta: delta, Objective: ObjectiveOutputSize, Seed: seed}
		s, err := New(opts)
		if err != nil {
			return false
		}
		res, err := s.Sanitize(in)
		if err != nil {
			return false
		}
		for k := 0; k < res.Preprocessed.NumUsers(); k++ {
			if BreachProbability(res.Preprocessed, k, res.Plan.Counts) > delta+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestExactDefinition2OnPipeline runs the enumeration-based Definition 2
// checker over an actual sanitizer plan on a tiny enumerable corpus — the
// strongest end-to-end privacy statement in the suite.
func TestExactDefinition2OnPipeline(t *testing.T) {
	recs := []Record{
		{User: "A", Query: "q1", URL: "u1", Count: 3},
		{User: "B", Query: "q1", URL: "u1", Count: 2},
		{User: "A", Query: "q2", URL: "u2", Count: 1},
		{User: "C", Query: "q2", URL: "u2", Count: 2},
		{User: "B", Query: "q3", URL: "u3", Count: 2},
		{User: "C", Query: "q3", URL: "u3", Count: 1},
	}
	in, err := NewLog(recs)
	if err != nil {
		t.Fatal(err)
	}
	// Budget chosen so a non-empty plan exists: user C holds 2/3 of q2-u2
	// (coef ln 3 ≈ 1.1) and 1/3 of q3-u3.
	p := dp.Params{Eps: 1.4, Delta: 0.8}
	s, err := New(Options{Epsilon: p.Eps, Delta: p.Delta, Objective: ObjectiveOutputSize, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Sanitize(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.OutputSize == 0 {
		t.Fatal("empty plan; exact check would be vacuous")
	}
	if err := dp.ExactCheck(res.Preprocessed, p, res.Plan.Counts); err != nil {
		t.Errorf("exact Definition-2 check failed on a released plan: %v", err)
	}
}

// TestFailureInjectionAuditRejects corrupts released plans in several ways
// and requires the audit to reject each corruption.
func TestFailureInjectionAuditRejects(t *testing.T) {
	in := testCorpus(t)
	s, err := New(testOptions(ObjectiveOutputSize))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Sanitize(in)
	if err != nil {
		t.Fatal(err)
	}
	pre := res.Preprocessed
	eps, delta := s.Options().Epsilon, s.Options().Delta
	base := res.Plan.Counts

	corruptions := map[string]func([]int) []int{
		"inflate-everything": func(c []int) []int {
			out := append([]int(nil), c...)
			for i := range out {
				out[i] += pre.PairCount(i) * 10
			}
			return out
		},
		"negative-count": func(c []int) []int {
			out := append([]int(nil), c...)
			out[0] = -1
			return out
		},
		"wrong-length": func(c []int) []int {
			return append(append([]int(nil), c...), 7)
		},
	}
	for name, corrupt := range corruptions {
		if err := VerifyCounts(pre, eps, delta, corrupt(base)); err == nil {
			t.Errorf("%s: corrupted plan passed the audit", name)
		}
	}
	// Sampling must also refuse a plan that puts mass on a unique pair of
	// an unpreprocessed log; simulate by auditing against the RAW input.
	raw := in
	counts := make([]int, raw.NumPairs())
	placed := false
	for i := 0; i < raw.NumPairs(); i++ {
		if raw.Pair(i).IsUnique() {
			counts[i] = 1
			placed = true
			break
		}
	}
	if placed {
		if err := VerifyCounts(raw, eps, delta, counts); err == nil {
			t.Error("unique-pair mass passed the audit against the raw log")
		}
	}
}

// TestTightenedParametersRejectReleasedPlan: a plan released at (ε, δ) must
// fail the audit at a sufficiently tighter (ε′, δ′) — the audit is not
// vacuously permissive.
func TestTightenedParametersRejectReleasedPlan(t *testing.T) {
	in := testCorpus(t)
	s, err := New(testOptions(ObjectiveOutputSize))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Sanitize(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.OutputSize == 0 {
		t.Skip("empty plan")
	}
	if err := VerifyCounts(res.Preprocessed, 1e-6, 1e-6, res.Plan.Counts); err == nil {
		t.Error("non-empty plan audits at a near-zero budget")
	}
}

// TestSanitizeStatisticalShapePreservation: over many sampled outputs, the
// per-pair expected user shares converge to the input histogram shares —
// the defining property of the §3.2 randomization (law of large numbers
// over Multinomial expectations).
func TestSanitizeStatisticalShapePreservation(t *testing.T) {
	recs := []Record{
		{User: "A", Query: "g", URL: "g.com", Count: 15},
		{User: "B", Query: "g", URL: "g.com", Count: 7},
		{User: "C", Query: "g", URL: "g.com", Count: 17},
		{User: "A", Query: "b", URL: "a.com", Count: 4},
		{User: "B", Query: "b", URL: "a.com", Count: 4},
	}
	in, err := NewLog(recs)
	if err != nil {
		t.Fatal(err)
	}
	shares := map[string]float64{}
	const reps = 400
	totalG := 0
	for rep := 0; rep < reps; rep++ {
		s, err := New(Options{Epsilon: math.Log(4), Delta: 0.9, Objective: ObjectiveOutputSize, Seed: uint64(rep)})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Sanitize(in)
		if err != nil {
			t.Fatal(err)
		}
		gi := res.Output.PairIndex(PairKey{Query: "g", URL: "g.com"})
		if gi < 0 {
			continue
		}
		for _, e := range res.Output.Pair(gi).Entries {
			shares[res.Output.User(e.User).ID] += float64(e.Count)
		}
		totalG += res.Output.PairCount(gi)
	}
	if totalG == 0 {
		t.Fatal("google pair never released")
	}
	// Input shares 15/39, 7/39, 17/39.
	want := map[string]float64{"A": 15.0 / 39, "B": 7.0 / 39, "C": 17.0 / 39}
	for user, w := range want {
		got := shares[user] / float64(totalG)
		if math.Abs(got-w) > 0.05 {
			t.Errorf("user %s sampled share %.3f, want ≈%.3f", user, got, w)
		}
	}
}
