package dpslog_test

// CLI smoke tests: build every command once and drive the full pipeline
// slgen → slstats → slsanitize → slexp through real binaries, verifying the
// tools compose the way the README promises. Skipped under -short.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmds compiles the four commands into a temp dir once per test run.
func buildCmds(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	dir := t.TempDir()
	for _, name := range []string{"slgen", "slstats", "slsanitize", "slexp"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Dir = repoRoot(t)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, msg)
		}
	}
	return dir
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func run(t *testing.T, bin string, args ...string) (stdout, stderr string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr: %s", filepath.Base(bin), args, err, errBuf.String())
	}
	return out.String(), errBuf.String()
}

func TestCLIPipeline(t *testing.T) {
	bin := buildCmds(t)
	work := t.TempDir()
	corpus := filepath.Join(work, "corpus.tsv")

	// slgen: synthesize a corpus.
	_, genErr := run(t, filepath.Join(bin, "slgen"), "-profile", "tiny", "-seed", "3", "-o", corpus)
	if !strings.Contains(genErr, "wrote") {
		t.Errorf("slgen stderr missing summary: %q", genErr)
	}
	data, err := os.ReadFile(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if len(bytes.Split(bytes.TrimSpace(data), []byte("\n"))) < 10 {
		t.Fatalf("corpus suspiciously small:\n%s", data)
	}
	// Canonical 4-column schema.
	first := strings.Split(strings.SplitN(string(data), "\n", 2)[0], "\t")
	if len(first) != 4 {
		t.Fatalf("corpus row has %d fields, want 4: %v", len(first), first)
	}

	// slstats: Table-3 style characteristics.
	statsOut, _ := run(t, filepath.Join(bin, "slstats"), corpus)
	for _, want := range []string{"raw:", "preprocessed:", "removed:"} {
		if !strings.Contains(statsOut, want) {
			t.Errorf("slstats output missing %q:\n%s", want, statsOut)
		}
	}

	// slsanitize: a differentially private release with an audit line.
	sanitized := filepath.Join(work, "sanitized.tsv")
	_, sanErr := run(t, filepath.Join(bin, "slsanitize"),
		"-eexp", "2", "-delta", "0.5", "-objective", "size", "-o", sanitized, corpus)
	if !strings.Contains(sanErr, "audit OK") {
		t.Errorf("slsanitize did not report a passing audit: %q", sanErr)
	}
	sanData, err := os.ReadFile(sanitized)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(sanData)), "\n") {
		if line == "" {
			continue
		}
		if got := len(strings.Split(line, "\t")); got != 4 {
			t.Fatalf("sanitized row has %d fields, want 4: %q", got, line)
		}
	}

	// The sanitized log feeds back into slstats (schema identical).
	reOut, _ := run(t, filepath.Join(bin, "slstats"), sanitized)
	if !strings.Contains(reOut, "raw:") {
		t.Errorf("slstats rejected the sanitized log:\n%s", reOut)
	}

	// slexp: regenerate one experiment.
	expOut, _ := run(t, filepath.Join(bin, "slexp"), "-profile", "tiny", "-seed", "3", "-exp", "table3")
	if !strings.Contains(expOut, "TABLE3") {
		t.Errorf("slexp table3 output malformed:\n%s", expOut)
	}
}

// TestCLIIngestRoundTrip: slingest generates the same corpus twice — once
// to a file in each format — and its local sharded -stats fold must report
// the identical digest for both, at different shard counts: the TSV and
// AOL renderings of one generation stream normalize to one histogram.
func TestCLIIngestRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "slingest")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/slingest")
	cmd.Dir = repoRoot(t)
	if msg, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build slingest: %v\n%s", err, msg)
	}
	work := t.TempDir()
	tsv := filepath.Join(work, "c.tsv")
	aol := filepath.Join(work, "c.aol")
	run(t, bin, "-profile", "tiny", "-seed", "9", "-format", "tsv", "-o", tsv, "-quiet")
	run(t, bin, "-profile", "tiny", "-seed", "9", "-format", "aol", "-o", aol, "-quiet")

	digestOf := func(file, format string, shards int) string {
		out, _ := run(t, bin, "-file", file, "-format", format, "-stats", "-shards", fmt.Sprint(shards), "-quiet")
		var res struct {
			Digest string `json:"digest"`
		}
		if err := json.Unmarshal([]byte(out), &res); err != nil || res.Digest == "" {
			t.Fatalf("bad -stats output %q: %v", out, err)
		}
		return res.Digest
	}
	want := digestOf(tsv, "tsv", 1)
	for _, shards := range []int{2, 8} {
		if got := digestOf(tsv, "tsv", shards); got != want {
			t.Fatalf("tsv digest at %d shards: %s != %s", shards, got, want)
		}
	}
	if got := digestOf(aol, "aol", 4); got != want {
		t.Fatalf("aol digest %s != tsv digest %s", got, want)
	}
}

func TestCLISanitizeObjectives(t *testing.T) {
	bin := buildCmds(t)
	work := t.TempDir()
	corpus := filepath.Join(work, "corpus.tsv")
	run(t, filepath.Join(bin, "slgen"), "-profile", "tiny", "-seed", "5", "-o", corpus)
	for _, objective := range []string{"size", "frequent", "diversity", "combined", "query-diversity"} {
		_, stderr := run(t, filepath.Join(bin, "slsanitize"),
			"-eexp", "2", "-delta", "0.5", "-objective", objective,
			"-support", "0.01", "-o", filepath.Join(work, objective+".tsv"), corpus)
		if !strings.Contains(stderr, "audit OK") {
			t.Errorf("objective %s: no passing audit: %q", objective, stderr)
		}
	}
}
