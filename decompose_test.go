package dpslog

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// TestSanitizeParallelismInvariance locks down the decomposition contract
// at the API surface: at a fixed seed, the sanitized output is byte-for-byte
// identical whether the component solves run sequentially or concurrently.
func TestSanitizeParallelismInvariance(t *testing.T) {
	in, err := Generate("tiny-sharded", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"output-size", Options{Objective: ObjectiveOutputSize}},
		{"frequent", Options{Objective: ObjectiveFrequent, MinSupport: 0.01}},
		{"diversity", Options{Objective: ObjectiveDiversity}},
		{"combined", Options{Objective: ObjectiveCombined, MinSupport: 0.01}},
		{"query-diversity", Options{Objective: ObjectiveQueryDiversity}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			render := func(parallelism int) ([]byte, *Result) {
				opts := tc.opts
				opts.Epsilon = math.Log(2)
				opts.Delta = 0.5
				opts.Seed = 42
				opts.Parallelism = parallelism
				s, err := New(opts)
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Sanitize(in)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if _, err := WriteTSV(&buf, res.Output); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes(), res
			}
			seq, seqRes := render(1)
			par, parRes := render(8)
			if !bytes.Equal(seq, par) {
				t.Fatalf("sanitized output differs between Parallelism 1 and 8 (%d vs %d bytes)", len(seq), len(par))
			}
			if seqRes.Plan.Objective != parRes.Plan.Objective {
				t.Fatalf("objective differs: %g vs %g", seqRes.Plan.Objective, parRes.Plan.Objective)
			}
			if seqRes.Plan.Components < 2 {
				t.Fatalf("tiny-sharded should decompose, got %d component(s)", seqRes.Plan.Components)
			}
		})
	}
}

// TestSanitizeComponentsReported checks the Components plumbing through the
// public Result on connected and sharded corpora.
func TestSanitizeComponentsReported(t *testing.T) {
	for _, tc := range []struct {
		profile string
		want    int
	}{{"tiny", 1}, {"tiny-sharded", 4}} {
		in, err := Generate(tc.profile, 1)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Options{Epsilon: math.Log(2), Delta: 0.5, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Sanitize(in)
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan.Components != tc.want {
			t.Errorf("%s: Components = %d, want %d", tc.profile, res.Plan.Components, tc.want)
		}
	}
}

// TestCanonicalIgnoresParallelism: plans are parallelism-invariant, so the
// canonical options (the plan-cache key) must not distinguish parallelism
// levels.
func TestCanonicalIgnoresParallelism(t *testing.T) {
	a := Options{Epsilon: 1, Delta: 0.5, Parallelism: 8}.Canonical()
	b := Options{Epsilon: 1, Delta: 0.5}.Canonical()
	if a != b {
		t.Fatalf("Canonical differs with Parallelism set: %+v vs %+v", a, b)
	}
	if err := (Options{Epsilon: 1, Delta: 0.5, Parallelism: -1}).Validate(); err == nil {
		t.Fatal("negative Parallelism should fail validation")
	}
}

// TestNoisyFrequentObjectiveNotNaN is the regression test for the noisy
// F-UMP objective: Sanitize used to report NaN for EndToEnd frequent-pair
// runs, which also broke JSON encoding of the server's sync response.
func TestNoisyFrequentObjectiveNotNaN(t *testing.T) {
	in, err := Generate("tiny", 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{
		Epsilon: math.Log(4), Delta: 0.5,
		Objective: ObjectiveFrequent, MinSupport: 0.01,
		Seed: 9, EndToEnd: true, D: 2, EpsPrime: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Sanitize(in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.NoiseApplied {
		t.Fatal("expected NoiseApplied")
	}
	if math.IsNaN(res.Plan.Objective) {
		t.Fatal("noisy F-UMP objective is NaN")
	}
	// The reported objective must be the realized distance of the *noisy*
	// counts, recomputable from the released plan.
	outSize := 0
	for _, c := range res.Plan.Counts {
		outSize += c
	}
	if res.Plan.OutputSize != outSize {
		t.Fatalf("OutputSize %d != Σ counts %d", res.Plan.OutputSize, outSize)
	}
	if _, err := json.Marshal(res.Plan.Objective); err != nil {
		t.Fatalf("objective does not JSON-encode: %v", err)
	}
}

// TestNoisyObjectivesRecomputed checks the other noisy objectives are
// recomputed from the noisy counts rather than copied from the clean solve.
func TestNoisyObjectivesRecomputed(t *testing.T) {
	in, err := Generate("tiny", 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"diversity", Options{Objective: ObjectiveDiversity}},
		{"query-diversity", Options{Objective: ObjectiveQueryDiversity}},
		{"combined", Options{Objective: ObjectiveCombined, MinSupport: 0.01}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := tc.opts
			opts.Epsilon = math.Log(4)
			opts.Delta = 0.5
			opts.Seed = 11
			opts.EndToEnd = true
			opts.D = 2
			opts.EpsPrime = 1.0
			s, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Sanitize(in)
			if err != nil {
				t.Fatal(err)
			}
			if math.IsNaN(res.Plan.Objective) || math.IsInf(res.Plan.Objective, 0) {
				t.Fatalf("bad noisy objective %g", res.Plan.Objective)
			}
			switch tc.opts.Objective {
			case ObjectiveDiversity, ObjectiveQueryDiversity:
				// Distinct-retained objectives can never exceed the number
				// of pairs with positive counts.
				positive := 0
				for _, c := range res.Plan.Counts {
					if c > 0 {
						positive++
					}
				}
				if int(res.Plan.Objective) > positive {
					t.Fatalf("objective %g exceeds %d positive pairs", res.Plan.Objective, positive)
				}
			}
		})
	}
}
