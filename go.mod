module dpslog

go 1.24
