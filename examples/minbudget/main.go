// Min-budget example: the paper's §7 "privacy breach-minimizing problem" —
// the dual of the utility-maximizing problems. Instead of fixing (ε, δ) and
// asking how much utility survives, a data owner states the utility they
// need (an output of at least N tuples) and asks for the *smallest privacy
// budget* that can deliver it.
//
// This inverts the workflow of the other examples and produces the
// privacy/utility frontier directly.
//
//	go run ./examples/minbudget
package main

import (
	"fmt"
	"log"
	"math"

	"dpslog"
)

func main() {
	in, err := dpslog.Generate("tiny", 13)
	if err != nil {
		log.Fatal(err)
	}
	pre, _ := dpslog.Preprocess(in)
	fmt.Printf("corpus: %s\n\n", dpslog.ComputeStats(pre))

	fmt.Println("required |O|   minimal ε      e^ε      minimal δ (ln 1/(1−δ) = ε)")
	targets := []int{2, 5, 10, 20, 40}
	for _, target := range targets {
		mb, err := dpslog.MinBudgetForSize(in, target)
		if err != nil {
			log.Fatal(err)
		}
		delta := dpslog.MinDeltaFor(mb.Epsilon)
		fmt.Printf("%-13d %-13.4f %-8.3f %.4f\n", target, mb.Epsilon, math.Exp(mb.Epsilon), delta)

		// Sanity: the plan audits at exactly its reported frontier point.
		// The 1e-9 widening is float-audit slack, not composition.
		//slvet:ignore budgetarith audit tolerance against the binary-search frontier, not budget arithmetic
		if err := dpslog.VerifyCounts(mb.Preprocessed, mb.Epsilon+1e-9, clamp(delta), mb.Counts); err != nil {
			log.Fatalf("frontier plan failed audit: %v", err)
		}
	}

	fmt.Println("\nEach row is a point on the privacy/utility frontier: demanding more")
	fmt.Println("released tuples requires a strictly larger worst-case per-user exposure")
	fmt.Println("(the largest Σ x·ln t over all user logs). A release at that ε also")
	fmt.Println("needs δ with ln 1/(1−δ) ≥ ε, shown in the last column.")
}

func clamp(delta float64) float64 {
	const eps = 1e-9
	if delta <= 0 {
		return eps
	}
	if delta >= 1 {
		return 1 - eps
	}
	return delta + eps
}
