// End-to-end example: the paper's §4.2 complete pipeline. The multinomial
// sampling step is differentially private by Theorem 1, but the *count
// computation* (the optimization) also observes the data. §4.2 makes it
// private too:
//
//  1. bound the sensitivity of the optimal counts by d — drop user logs
//     whose removal shifts any pair's optimal count by more than d;
//  2. add Lap(d/ε′) noise to every optimal count;
//  3. (this repo's addition) project the noisy plan back into the Theorem-1
//     polytope so the sampling step's guarantee is preserved exactly.
//
// The example runs the full pipeline on a small corpus and then, on a tiny
// enumerable log, verifies Definition 2 *exactly* by walking the entire
// output space of the mechanism.
//
//	go run ./examples/endtoend
package main

import (
	"fmt"
	"log"
	"math"

	"dpslog"
)

func main() {
	in, err := dpslog.Generate("tiny", 31)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %s\n\n", dpslog.ComputeStats(in))

	// Step 0: the plain (sampling-only DP) release for comparison.
	base, err := dpslog.New(dpslog.Options{
		Epsilon: math.Log(2), Delta: 0.5,
		Objective: dpslog.ObjectiveOutputSize, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	baseRes, err := base.Sanitize(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampling-only DP release:   |O| = %3d\n", baseRes.Plan.OutputSize)

	// Steps 1–3: end-to-end DP with Lap(d/ε′) noise on the counts. The
	// noisy plan is re-projected into the Theorem-1 polytope, so the
	// sampling guarantee is intact; the noise costs some utility.
	e2e, err := dpslog.New(dpslog.Options{
		Epsilon: math.Log(2), Delta: 0.5,
		Objective: dpslog.ObjectiveOutputSize, Seed: 7,
		EndToEnd: true, D: 2, EpsPrime: 1.0,
	})
	if err != nil {
		log.Fatal(err)
	}
	e2eRes, err := e2e.Sanitize(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("end-to-end DP release:      |O| = %3d  (noise applied: %v)\n",
		e2eRes.Plan.OutputSize, e2eRes.Plan.NoiseApplied)

	// Both plans must pass the Theorem-1 audit.
	for name, res := range map[string]*dpslog.Result{"sampling-only": baseRes, "end-to-end": e2eRes} {
		if err := dpslog.VerifyCounts(res.Preprocessed, math.Log(2), 0.5, res.Plan.Counts); err != nil {
			log.Fatalf("%s release failed the Theorem-1 audit: %v", name, err)
		}
	}
	fmt.Println("both releases pass the Theorem-1 audit")

	// Utility cost of end-to-end noise across ε′ (the paper's trade-off:
	// smaller ε′ → more noise → less utility, stronger count privacy).
	fmt.Println("\nutility vs ε′ (noise budget of the count computation):")
	fmt.Println("ε′      |O| after noise+projection")
	for _, epsPrime := range []float64{0.25, 0.5, 1.0, 2.0, 4.0} {
		s, err := dpslog.New(dpslog.Options{
			Epsilon: math.Log(2), Delta: 0.5,
			Objective: dpslog.ObjectiveOutputSize, Seed: 7,
			EndToEnd: true, D: 2, EpsPrime: epsPrime,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Sanitize(in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7g %d\n", epsPrime, res.Plan.OutputSize)
	}

	fmt.Println("\nThe sensitivity-bounding preprocessing (dropping users whose removal")
	fmt.Println("shifts any optimal count by more than d) is exposed as dp.BoundSensitivity")
	fmt.Println("and exercised in the test suite; it costs one solve per user log.")
}
