// Quickstart: generate a small synthetic search log, sanitize it with the
// output-size objective (O-UMP), and inspect what the differentially
// private release preserves.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"math"

	"dpslog"
)

func main() {
	// A synthetic AOL-like corpus; swap in dpslog.ReadTSV(file) for real
	// data in the canonical (user, query, url, count) format.
	in, err := dpslog.Generate("tiny", 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input:  %s\n", dpslog.ComputeStats(in))

	// (ε, δ)-probabilistic differential privacy with e^ε = 2, δ = 0.5 — the
	// paper's reference operating point.
	s, err := dpslog.New(dpslog.Options{
		Epsilon:   math.Log(2),
		Delta:     0.5,
		Objective: dpslog.ObjectiveOutputSize,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Sanitize(in)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("output: %s\n", dpslog.ComputeStats(res.Output))
	fmt.Printf("plan:   %s, released |O| = %d of λ-optimal release\n", res.Plan.Kind, res.Plan.OutputSize)
	fmt.Printf("prep:   removed %d unique pairs (Theorem 1 Condition 1)\n", res.PreStats.RemovedPairs)

	// Independent audit: anyone can re-check the released plan against the
	// Theorem-1 differential privacy conditions.
	if err := dpslog.VerifyCounts(res.Preprocessed, math.Log(2), 0.5, res.Plan.Counts); err != nil {
		log.Fatalf("audit failed: %v", err)
	}
	worst := 0.0
	for k := 0; k < res.Preprocessed.NumUsers(); k++ {
		if bp := dpslog.BreachProbability(res.Preprocessed, k, res.Plan.Counts); bp > worst {
			worst = bp
		}
	}
	fmt.Printf("audit:  OK — worst per-user breach probability %.4f ≤ δ = 0.5\n", worst)

	// The output has the identical schema as the input: print a few rows.
	fmt.Println("\nsanitized log sample (user, query, url, count):")
	recs := res.Output.Records()
	for i, r := range recs {
		if i == 5 {
			fmt.Printf("  ... (%d more rows)\n", len(recs)-5)
			break
		}
		fmt.Printf("  %s\t%s\t%s\t%d\n", r.User, r.Query, r.URL, r.Count)
	}

	// And it serializes exactly like the input does.
	if _, err := dpslog.WriteTSV(io.Discard, res.Output); err != nil {
		log.Fatal(err)
	}
}
