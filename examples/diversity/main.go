// Diversity example: the paper's §5.3 D-UMP workload. Behavioral
// researchers often care about *which* distinct query-url pairs survive a
// release more than about their counts — e.g. studying the breadth of
// topics a population searches. D-UMP maximizes the number of distinct
// pairs retained under the differential privacy constraints, an NP-hard
// binary program.
//
// This example runs all six in-repo BIP solvers on the same instance and
// compares retained diversity and runtime — a miniature of the paper's
// Table 7 and Figure 5.
//
//	go run ./examples/diversity
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"dpslog"
)

func main() {
	in, err := dpslog.Generate("tiny", 23)
	if err != nil {
		log.Fatal(err)
	}
	pre, _ := dpslog.Preprocess(in)
	fmt.Printf("corpus: %s\n\n", dpslog.ComputeStats(pre))

	const eExp, delta = 2.0, 0.5
	fmt.Printf("solver          retained  of %d  runtime\n", pre.NumPairs())
	for _, solver := range []string{"spe", "spe-violated", "branchbound", "rounding", "greedy", "feaspump"} {
		s, err := dpslog.New(dpslog.Options{
			Epsilon:   math.Log(eExp),
			Delta:     delta,
			Objective: dpslog.ObjectiveDiversity,
			Solver:    solver,
			Seed:      5,
		})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := s.Sanitize(in)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		pct := 100 * dpslog.RetainedDiversity(res.Preprocessed, res.Plan.Counts)
		fmt.Printf("%-15s %-9d %4.1f%%  %s\n", solver, res.Plan.OutputSize, pct, elapsed.Round(time.Microsecond))
	}

	fmt.Println("\nEvery D-UMP release keeps each retained pair at count 1 (a single")
	fmt.Println("multinomial trial), so the release reveals pair existence diversity")
	fmt.Println("while the Theorem-1 constraints still bound every user's exposure.")
}
