// Frequent-pairs example: the query-suggestion workload of the paper's
// §5.2. A search engine wants to release a log whose *frequent* query-url
// pairs keep their relative support, so downstream ranking/suggestion
// models trained on the release behave like models trained on the original.
//
// The F-UMP objective minimizes the summed support distance of the frequent
// pairs at a fixed output size |O| ≤ λ. This example sweeps |O| and reports
// Precision/Recall of the released frequent set (Equation 9) plus the
// distance objective, mirroring the paper's Tables 5–6.
//
//	go run ./examples/frequentpairs
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"dpslog"
)

func main() {
	in, err := dpslog.Generate("tiny", 11)
	if err != nil {
		log.Fatal(err)
	}
	pre, _ := dpslog.Preprocess(in)

	const eExp, delta = 2.0, 0.5
	epsilon := math.Log(eExp)
	lambda, err := dpslog.Lambda(in, epsilon, delta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %s\n", dpslog.ComputeStats(pre))
	fmt.Printf("λ(e^ε=%.1f, δ=%.1f) = %d\n\n", eExp, delta, lambda)
	if lambda < 2 {
		log.Fatal("corpus too tight for this demonstration; raise ε or δ")
	}

	// Frequent pairs at support s: the suggestion candidates.
	s := 4.0 / float64(pre.Size())
	inFreq := dpslog.FrequentPairs(pre, s)
	fmt.Printf("input frequent pairs at s=%.4f: %d\n", s, len(inFreq))

	fmt.Println("\n|O|    precision  recall  distance-sum")
	for _, frac := range []float64{0.5, 0.75, 1.0} {
		O := int(frac * float64(lambda))
		if O < 1 {
			O = 1
		}
		san, err := dpslog.New(dpslog.Options{
			Epsilon:    epsilon,
			Delta:      delta,
			Objective:  dpslog.ObjectiveFrequent,
			MinSupport: s,
			OutputSize: O,
			Seed:       99,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := san.Sanitize(in)
		if err != nil {
			log.Fatal(err)
		}
		outFreq := dpslog.FrequentPairs(res.Output, s)
		precision, recall := dpslog.PrecisionRecall(inFreq, outFreq)
		sum, _, _ := dpslog.SupportDistances(res.Preprocessed, res.Plan.Counts, s)
		fmt.Printf("%-6d %-10.3f %-7.3f %.4f\n", O, precision, recall, sum)
	}

	// Show the released suggestion candidates, most popular first — the
	// artifact a query-suggestion pipeline would consume.
	san, err := dpslog.New(dpslog.Options{
		Epsilon: epsilon, Delta: delta,
		Objective: dpslog.ObjectiveFrequent, MinSupport: s, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := san.Sanitize(in)
	if err != nil {
		log.Fatal(err)
	}
	type cand struct {
		key dpslog.PairKey
		sup float64
	}
	var cands []cand
	for key, sup := range dpslog.FrequentPairs(res.Output, s) {
		cands = append(cands, cand{key, sup})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].sup != cands[b].sup {
			return cands[a].sup > cands[b].sup
		}
		return cands[a].key.Query < cands[b].key.Query
	})
	fmt.Println("\nreleased suggestion candidates (query → url, support):")
	for i, c := range cands {
		if i == 8 {
			break
		}
		fmt.Printf("  %-12s → %-24s %.4f\n", c.key.Query, c.key.URL, c.sup)
	}
}
