package dpslog

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func testOptions(obj Objective) Options {
	return Options{
		Epsilon:   math.Log(2),
		Delta:     0.5,
		Objective: obj,
		Seed:      42,
	}
}

func testCorpus(t testing.TB) *Log {
	t.Helper()
	l, err := Generate("tiny", 3)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewValidatesOptions(t *testing.T) {
	if _, err := New(testOptions(ObjectiveOutputSize)); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	bad := []Options{
		{Epsilon: 0, Delta: 0.5},
		{Epsilon: 1, Delta: 0},
		{Epsilon: 1, Delta: 1},
		{Epsilon: 1, Delta: 0.5, Objective: Objective(99)},
		{Epsilon: 1, Delta: 0.5, Objective: ObjectiveFrequent},                                  // missing MinSupport
		{Epsilon: 1, Delta: 0.5, Objective: ObjectiveFrequent, MinSupport: 2},                   // bad support
		{Epsilon: 1, Delta: 0.5, Objective: ObjectiveFrequent, MinSupport: 0.1, OutputSize: -1}, // bad size
		{Epsilon: 1, Delta: 0.5, EndToEnd: true},                                                // missing D, EpsPrime
		{Epsilon: 1, Delta: 0.5, EndToEnd: true, D: 1},                                          // missing EpsPrime
	}
	for i, o := range bad {
		if _, err := New(o); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, o)
		}
	}
}

func TestObjectiveString(t *testing.T) {
	for _, o := range []Objective{ObjectiveOutputSize, ObjectiveFrequent, ObjectiveDiversity} {
		if o.String() == "" || strings.HasPrefix(o.String(), "Objective(") {
			t.Errorf("Objective(%d).String() = %q", int(o), o.String())
		}
	}
	if !strings.HasPrefix(Objective(42).String(), "Objective(") {
		t.Error("out-of-range objective should stringify with its index")
	}
}

func TestSanitizeOutputSize(t *testing.T) {
	in := testCorpus(t)
	s, err := New(testOptions(ObjectiveOutputSize))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Sanitize(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Kind != "O-UMP" {
		t.Errorf("plan kind = %q, want O-UMP", res.Plan.Kind)
	}
	if res.Output.Size() != res.Plan.OutputSize {
		t.Errorf("output size %d != plan size %d", res.Output.Size(), res.Plan.OutputSize)
	}
	// Audit the released plan independently.
	if err := VerifyCounts(res.Preprocessed, s.Options().Epsilon, s.Options().Delta, res.Plan.Counts); err != nil {
		t.Errorf("released plan fails audit: %v", err)
	}
	// Schema identical: output records parse back to the same log.
	var buf bytes.Buffer
	if _, err := WriteTSV(&buf, res.Output); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != res.Output.Size() {
		t.Error("TSV round trip changed output size")
	}
	// Output users/pairs are subsets of the preprocessed input.
	for i := 0; i < res.Output.NumPairs(); i++ {
		if res.Preprocessed.PairIndex(res.Output.Pair(i).Key()) < 0 {
			t.Errorf("output pair %v not in preprocessed input", res.Output.Pair(i).Key())
		}
	}
	for k := 0; k < res.Output.NumUsers(); k++ {
		if res.Preprocessed.UserIndex(res.Output.User(k).ID) < 0 {
			t.Errorf("output user %s not in input", res.Output.User(k).ID)
		}
	}
}

func TestSanitizeDeterministic(t *testing.T) {
	in := testCorpus(t)
	s, err := New(testOptions(ObjectiveOutputSize))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s.Sanitize(in)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Sanitize(in)
	if err != nil {
		t.Fatal(err)
	}
	a, b := r1.Output.Records(), r2.Output.Records()
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs across identical runs", i)
		}
	}
	// A different seed almost surely samples a different output.
	opts := testOptions(ObjectiveOutputSize)
	opts.Seed = 7
	s2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := s2.Sanitize(in)
	if err != nil {
		t.Fatal(err)
	}
	c := r3.Output.Records()
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical sampled outputs")
		}
	}
}

func TestSanitizeFrequent(t *testing.T) {
	in := testCorpus(t)
	pre, _ := Preprocess(in)
	opts := testOptions(ObjectiveFrequent)
	opts.MinSupport = 4.0 / float64(pre.Size())
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Sanitize(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Kind != "F-UMP" {
		t.Errorf("plan kind = %q, want F-UMP", res.Plan.Kind)
	}
	if res.Plan.Lambda <= 0 {
		t.Error("λ not recorded for an F-UMP run")
	}
	if res.Plan.OutputSize > res.Plan.Lambda {
		t.Errorf("output %d exceeds λ %d", res.Plan.OutputSize, res.Plan.Lambda)
	}
	// Precision of frequent pairs must be 1 (paper §6.3) on the plan
	// supports; evaluate on the sampled output which uses exactly the plan's
	// pair totals.
	inFreq := FrequentPairs(res.Preprocessed, opts.MinSupport)
	outFreq := FrequentPairs(res.Output, opts.MinSupport)
	precision, _ := PrecisionRecall(inFreq, outFreq)
	if precision < 0.99 {
		t.Errorf("precision = %g, want 1", precision)
	}
}

func TestSanitizeFrequentExplicitSize(t *testing.T) {
	in := testCorpus(t)
	lam, err := Lambda(in, math.Log(2), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if lam < 2 {
		t.Skipf("tiny corpus λ=%d too small", lam)
	}
	opts := testOptions(ObjectiveFrequent)
	opts.MinSupport = 0.01
	opts.OutputSize = lam
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sanitize(in); err != nil {
		t.Fatalf("|O| = λ should be feasible: %v", err)
	}
	opts.OutputSize = lam + 1000
	s2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Sanitize(in); err == nil {
		t.Error("|O| > λ accepted")
	}
}

func TestSanitizeDiversity(t *testing.T) {
	in := testCorpus(t)
	for _, solver := range []string{"", "spe", "greedy"} {
		opts := testOptions(ObjectiveDiversity)
		opts.Solver = solver
		s, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Sanitize(in)
		if err != nil {
			t.Fatalf("solver %q: %v", solver, err)
		}
		if res.Plan.Kind != "D-UMP" {
			t.Errorf("plan kind = %q, want D-UMP", res.Plan.Kind)
		}
		for i, x := range res.Plan.Counts {
			if x < 0 || x > 1 {
				t.Errorf("solver %q: count %d at pair %d not binary", solver, x, i)
			}
		}
		if div := RetainedDiversity(res.Preprocessed, res.Plan.Counts); div <= 0 {
			t.Errorf("solver %q: zero diversity at a permissive budget", solver)
		}
	}
}

func TestSanitizeEndToEnd(t *testing.T) {
	in := testCorpus(t)
	opts := testOptions(ObjectiveOutputSize)
	opts.EndToEnd = true
	opts.D = 2
	opts.EpsPrime = 1.0
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Sanitize(in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.NoiseApplied {
		t.Error("NoiseApplied not set for an end-to-end run")
	}
	// Even with noise the released plan must satisfy Theorem 1 and the box.
	if err := VerifyCounts(res.Preprocessed, opts.Epsilon, opts.Delta, res.Plan.Counts); err != nil {
		t.Errorf("noisy plan fails audit: %v", err)
	}
	for i, x := range res.Plan.Counts {
		if x > res.Preprocessed.PairCount(i) {
			t.Errorf("noisy count %d exceeds input count at pair %d", x, i)
		}
	}
}

func TestLambdaMonotone(t *testing.T) {
	in := testCorpus(t)
	l1, err := Lambda(in, math.Log(1.1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Lambda(in, math.Log(2.3), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if l2 < l1 {
		t.Errorf("λ not monotone in ε: %d then %d", l1, l2)
	}
}

func TestBreachProbabilityPublicAPI(t *testing.T) {
	in := testCorpus(t)
	s, err := New(testOptions(ObjectiveOutputSize))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Sanitize(in)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < res.Preprocessed.NumUsers(); k++ {
		bp := BreachProbability(res.Preprocessed, k, res.Plan.Counts)
		if bp > 0.5+1e-9 {
			t.Errorf("user %d breach probability %g exceeds δ", k, bp)
		}
	}
}

func TestGenerateUnknownProfile(t *testing.T) {
	if _, err := Generate("gigantic", 1); err == nil {
		t.Error("unknown profile accepted")
	}
	for _, profile := range GenerateProfiles() {
		if _, err := Generate(profile, 1); err != nil {
			t.Errorf("listed profile %q does not generate: %v", profile, err)
		}
	}
}
