package dpslog

import (
	"context"
	"fmt"

	"dpslog/internal/mechanism"
)

// This file is the public face of the pluggable mechanism registry
// (internal/mechanism): enumerate the registered mechanisms, run one by
// its wire name, and ask what a release would charge — the same dispatch
// the HTTP server uses.

// MechanismRelease is the output of one mechanism run: a sanitized log
// for schema-preserving mechanisms (ump), noisy aggregate pair counts for
// the histogram mechanisms (laplace, zealous, localdp).
type MechanismRelease = mechanism.Release

// ReleasedPair is one aggregate release row: a query-url pair and its
// noisy count.
type ReleasedPair = mechanism.PairCount

// Mechanisms lists the registered mechanism wire names in sorted order.
func Mechanisms() []string { return mechanism.Names() }

// SanitizeMechanism validates the options and runs the mechanism named by
// opts.Mechanism ("" and "ump" select the paper's pipeline) over the
// input log. All mechanisms are deterministic in opts.Seed.
func SanitizeMechanism(ctx context.Context, in *Log, opts Options) (*MechanismRelease, error) {
	m, err := mechanism.Get(opts.Mechanism)
	if err != nil {
		return nil, err
	}
	if err := m.Validate(opts); err != nil {
		return nil, err
	}
	return m.Sanitize(ctx, in, opts)
}

// MechanismCost reports the (ε, δ) the named mechanism declares for one
// release under the given options — what the server's ledger charges a
// corpus budget.
func MechanismCost(opts Options) (Budget, error) {
	m, err := mechanism.Get(opts.Mechanism)
	if err != nil {
		return Budget{}, err
	}
	return m.Cost(opts), nil
}

// errNotSchemaPreserving reports an aggregate mechanism handed to the
// schema-preserving Sanitizer API.
func errNotSchemaPreserving(name string) error {
	return fmt.Errorf("dpslog: mechanism %q releases aggregate counts, not a sanitized log; use SanitizeMechanism", name)
}
