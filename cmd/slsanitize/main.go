// Command slsanitize applies the paper's differentially private
// sanitization (Algorithm 1) to a search log in canonical TSV format and
// writes the sanitized log, schema-identical, to stdout or a file.
//
// Usage:
//
//	slsanitize -eexp 2.0 -delta 0.5 [-objective size|frequent|diversity]
//	           [-support 0.002] [-size N] [-solver spe] [-seed N]
//	           [-parallelism N] [-endtoend -d 2 -epsprime 1.0]
//	           [-o out.tsv] in.tsv
//
// The run prints an audit report (per-user worst-case ratio and breach
// probability bounds) to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"dpslog"
)

func main() {
	eexp := flag.Float64("eexp", 2.0, "privacy parameter e^ε (the paper's parameterization)")
	delta := flag.Float64("delta", 0.5, "privacy parameter δ in (0,1)")
	objective := flag.String("objective", "size", "utility objective: size (O-UMP), frequent (F-UMP), diversity (D-UMP), combined (§7 joint) or query-diversity")
	sizeWeight := flag.Float64("size-weight", 1, "size weight for -objective combined")
	distWeight := flag.Float64("dist-weight", 1, "distance weight for -objective combined")
	support := flag.Float64("support", 0.002, "frequent-pair minimum support s (objective=frequent)")
	size := flag.Int("size", 0, "fixed output size |O| (objective=frequent; 0 = λ/2)")
	solver := flag.String("solver", "spe", "D-UMP BIP solver: spe, spe-violated, branchbound, feaspump, rounding, greedy")
	seed := flag.Uint64("seed", 1, "sampling seed")
	parallelism := flag.Int("parallelism", 0, "concurrent connected-component solves (0 = GOMAXPROCS); output is invariant in it")
	endToEnd := flag.Bool("endtoend", false, "apply §4.2 Laplace noise to the optimal counts")
	d := flag.Int("d", 2, "count sensitivity bound for -endtoend")
	epsPrime := flag.Float64("epsprime", 1.0, "ε′ budget of the count computation for -endtoend")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var in io.Reader = os.Stdin
	var inFile *os.File
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		inFile = f
		in = f
	}
	log, err := dpslog.ReadTSV(in)
	if err != nil {
		fatal(err)
	}
	if inFile != nil {
		if err := inFile.Close(); err != nil {
			fatal(err)
		}
	}

	opts := dpslog.Options{
		Epsilon:     math.Log(*eexp),
		Delta:       *delta,
		MinSupport:  *support,
		OutputSize:  *size,
		Solver:      *solver,
		Seed:        *seed,
		Parallelism: *parallelism,
		EndToEnd:    *endToEnd,
		D:           *d,
		EpsPrime:    *epsPrime,
	}
	switch *objective {
	case "size":
		opts.Objective = dpslog.ObjectiveOutputSize
	case "frequent":
		opts.Objective = dpslog.ObjectiveFrequent
	case "diversity":
		opts.Objective = dpslog.ObjectiveDiversity
	case "combined":
		opts.Objective = dpslog.ObjectiveCombined
		opts.SizeWeight = *sizeWeight
		opts.DistanceWeight = *distWeight
	case "query-diversity":
		opts.Objective = dpslog.ObjectiveQueryDiversity
	default:
		fatal(fmt.Errorf("unknown objective %q", *objective))
	}

	s, err := dpslog.New(opts)
	if err != nil {
		fatal(err)
	}
	res, err := s.Sanitize(log)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		outFile = f
		w = f
	}
	if _, err := dpslog.WriteTSV(w, res.Output); err != nil {
		fatal(err)
	}
	// Close carries the final flush error; a truncated sanitized log must
	// fail the command rather than pass the audit below.
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fatal(err)
		}
	}

	// Audit report.
	fmt.Fprintf(os.Stderr, "slsanitize: %s plan, |O| = %d (input |D| = %d, preprocessed %d, %d component(s))\n",
		res.Plan.Kind, res.Plan.OutputSize, log.Size(), res.Preprocessed.Size(), res.Plan.Components)
	if err := dpslog.VerifyCounts(res.Preprocessed, opts.Epsilon, opts.Delta, res.Plan.Counts); err != nil {
		fatal(fmt.Errorf("audit failed: %w", err))
	}
	worstBreach := 0.0
	for k := 0; k < res.Preprocessed.NumUsers(); k++ {
		if bp := dpslog.BreachProbability(res.Preprocessed, k, res.Plan.Counts); bp > worstBreach {
			worstBreach = bp
		}
	}
	fmt.Fprintf(os.Stderr, "slsanitize: audit OK — worst per-user breach probability %.6f (δ = %g)\n",
		worstBreach, opts.Delta)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slsanitize:", err)
	os.Exit(1)
}
