// Command slingest is the bulk corpus loader: it streams AOL-scale search
// logs — generated on the fly or read from disk — into a file, to stdout,
// or straight into a running slserve via a chunked PUT, all under bounded
// memory. Nothing in the pipeline ever holds the whole corpus: generation
// emits click events one user at a time (gen.Stream), uploads flow through
// an io.Pipe into the HTTP body, and local ingestion uses the sharded
// streaming fold (internal/ingest).
//
// Usage:
//
//	slingest [-profile small] [-seed 1] [-users N] [-min-bytes N]
//	         [-file F] [-format tsv|aol]
//	         [-o FILE|-] | [-url http://host:port -corpus NAME] | [-stats]
//	         [-shards N] [-chunk BYTES] [-quiet]
//
// Source: -file reads an existing log; otherwise rows are generated from
// -profile/-seed (with -users overriding the profile's user count, and
// -min-bytes repeating the profile in disjoint namespaced blocks until at
// least that many bytes have been emitted — how a laptop-sized profile
// becomes a multi-hundred-MB corpus).
//
// Sink: -url/-corpus PUTs the stream to /v1/corpora/{name} (chunked
// transfer, ?format= passed through, so the server's sharded ingest does
// the folding); -o writes the raw rows to a file or stdout; -stats folds
// locally and prints the digest, shape and ingest statistics as JSON.
//
// On exit slingest reports rows, bytes, wall time, throughput and the
// process's peak RSS (VmHWM) — the number the bounded-memory claim is
// audited by: loading a corpus much larger than the reported peak proves
// the path never materializes it.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"dpslog/internal/gen"
	"dpslog/internal/ingest"
	"dpslog/internal/searchlog"
)

// aolHeader matches the historical release's first line.
const aolHeader = "AnonID\tQuery\tQueryTime\tItemRank\tClickURL\n"

func main() {
	profile := flag.String("profile", "small", "generation profile (tiny, small, paper, tiny-sharded, small-sharded)")
	seed := flag.Uint64("seed", 1, "generation seed")
	users := flag.Int("users", 0, "override the profile's user count (0 = profile default)")
	minBytes := flag.Int64("min-bytes", 0, "repeat the profile in disjoint blocks until at least this many bytes are emitted (0 = one block)")
	file := flag.String("file", "", "read rows from this file instead of generating")
	format := flag.String("format", "tsv", "row format: tsv (canonical 4-column) or aol (historical 5-column)")
	out := flag.String("o", "", "write rows to this file ('-' = stdout)")
	url := flag.String("url", "", "slserve base URL; with -corpus, stream the rows into PUT /v1/corpora/{name}")
	corpusName := flag.String("corpus", "", "corpus name for the server upload")
	stats := flag.Bool("stats", false, "fold the source locally (sharded streaming ingest) and print digest + stats JSON")
	shards := flag.Int("shards", 0, "local fold shards for -stats (0 = GOMAXPROCS)")
	chunk := flag.Int("chunk", 0, "streaming reader chunk bytes for -stats (0 = 256 KiB)")
	quiet := flag.Bool("quiet", false, "suppress the progress/summary lines on stderr")
	flag.Parse()

	f, err := ingest.ParseFormat(*format)
	if err != nil {
		fatal(err)
	}
	sinks := 0
	for _, on := range []bool{*out != "", *url != "", *stats} {
		if on {
			sinks++
		}
	}
	if sinks != 1 {
		fatal(errors.New("pick exactly one sink: -o FILE, -url/-corpus, or -stats"))
	}
	if (*url != "") != (*corpusName != "") {
		fatal(errors.New("-url and -corpus go together"))
	}

	start := time.Now()
	var rows, bytesOut atomic.Int64
	switch {
	case *stats:
		src, err := openSource(*file, *profile, *seed, *users, *minBytes, f, &rows, &bytesOut)
		if err != nil {
			fatal(err)
		}
		defer src.Close()
		l, st, err := ingest.Ingest(src, ingest.Config{
			Format: f,
			Shards: *shards,
			Scan:   searchlog.ScanConfig{ChunkBytes: *chunk},
		})
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{
			"digest": l.Digest(),
			"size":   l.Size(),
			"stats":  st,
		})
	case *url != "":
		src, err := openSource(*file, *profile, *seed, *users, *minBytes, f, &rows, &bytesOut)
		if err != nil {
			fatal(err)
		}
		defer src.Close()
		if err := push(*url, *corpusName, f, src, srcLength(*file)); err != nil {
			fatal(err)
		}
	default:
		w, closeW, err := openSink(*out)
		if err != nil {
			fatal(err)
		}
		src, err := openSource(*file, *profile, *seed, *users, *minBytes, f, &rows, &bytesOut)
		if err != nil {
			fatal(err)
		}
		if _, err := io.Copy(w, src); err != nil {
			fatal(err)
		}
		src.Close()
		if err := closeW(); err != nil {
			fatal(err)
		}
	}
	if !*quiet {
		elapsed := time.Since(start)
		nBytes := bytesOut.Load()
		mbs := float64(nBytes) / (1 << 20) / max(elapsed.Seconds(), 1e-9)
		fmt.Fprintf(os.Stderr, "slingest: %d rows, %d bytes in %.1fs (%.1f MiB/s), peak RSS %s\n",
			rows.Load(), nBytes, elapsed.Seconds(), mbs, formatBytes(peakRSSBytes()))
	}
}

// openSource returns the row stream: the named file, or a pipe fed by the
// block-repeated generator. rows/bytesOut are updated as the stream is
// consumed.
func openSource(file, profile string, seed uint64, users int, minBytes int64, f ingest.Format, rows, bytesOut *atomic.Int64) (io.ReadCloser, error) {
	if file != "" {
		fh, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		return countingReader{r: fh, c: fh, rows: rows, bytes: bytesOut}, nil
	}
	p, err := gen.Profiles(profile)
	if err != nil {
		return nil, err
	}
	if users > 0 {
		p.Users = users
	}
	pr, pw := io.Pipe()
	go func() {
		bw := bufio.NewWriterSize(pw, 1<<20)
		_, err := writeBlocks(bw, p, seed, minBytes, f, rows, bytesOut)
		if err == nil {
			err = bw.Flush()
		}
		pw.CloseWithError(err)
	}()
	return pr, nil
}

// writeBlocks streams the profile once, then — while the running byte
// count is below minBytes — again and again under disjoint "b{i}-"
// namespaces (fresh users, queries and urls per block, decorrelated
// seeds), so an arbitrary-size corpus is generated from a fixed profile
// without ever holding it. Deterministic in (profile, seed, format,
// minBytes).
func writeBlocks(w *bufio.Writer, p gen.Profile, seed uint64, minBytes int64, f ingest.Format, rows, bytesOut *atomic.Int64) (int64, error) {
	var written int64
	count := func(n int, err error) error {
		written += int64(n)
		bytesOut.Add(int64(n))
		return err
	}
	if f == ingest.FormatAOL {
		if err := count(w.WriteString(aolHeader)); err != nil {
			return written, err
		}
	}
	for block := 0; ; block++ {
		prefix := ""
		blockSeed := seed
		if block > 0 {
			prefix = fmt.Sprintf("b%03d-", block)
			blockSeed = seed ^ (uint64(block) * 0x9e3779b97f4a7c15)
		}
		emit := func(user, query, url string, _ int) error {
			rows.Add(1)
			if f == ingest.FormatAOL {
				return count(fmt.Fprintf(w, "%s%s\t%s%s\t2006-03-01 00:00:00\t1\t%s%s\n", prefix, user, prefix, query, prefix, url))
			}
			return count(fmt.Fprintf(w, "%s%s\t%s%s\t%s%s\t1\n", prefix, user, prefix, query, prefix, url))
		}
		if err := gen.Stream(p, blockSeed, emit); err != nil {
			return written, err
		}
		if written >= minBytes {
			return written, nil
		}
	}
}

// push streams the source into PUT /v1/corpora/{name}. length < 0 sends
// chunked transfer encoding (the generated-source case); the server's
// admission gate then books a default reservation for it.
func push(base, name string, f ingest.Format, src io.Reader, length int64) error {
	u := strings.TrimSuffix(base, "/") + "/v1/corpora/" + name
	if f == ingest.FormatAOL {
		u += "?format=aol"
	}
	req, err := http.NewRequest(http.MethodPut, u, io.NopCloser(src))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/tab-separated-values")
	if length > 0 {
		req.ContentLength = length
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("PUT %s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	os.Stdout.Write(body)
	return nil
}

// srcLength is the Content-Length to declare: the file size when the
// source is a file, -1 (chunked) when it is generated.
func srcLength(file string) int64 {
	if file == "" {
		return -1
	}
	if info, err := os.Stat(file); err == nil {
		return info.Size()
	}
	return -1
}

func openSink(out string) (io.Writer, func() error, error) {
	if out == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	fh, err := os.Create(out)
	if err != nil {
		return nil, nil, err
	}
	bw := bufio.NewWriterSize(fh, 1<<20)
	return bw, func() error {
		if err := bw.Flush(); err != nil {
			fh.Close()
			return err
		}
		return fh.Close()
	}, nil
}

// countingReader tallies rows (newlines) and bytes as the consumer pulls.
type countingReader struct {
	r     io.Reader
	c     io.Closer
	rows  *atomic.Int64
	bytes *atomic.Int64
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.bytes.Add(int64(n))
	lines := int64(0)
	for _, b := range p[:n] {
		if b == '\n' {
			lines++
		}
	}
	cr.rows.Add(lines)
	return n, err
}

func (cr countingReader) Close() error { return cr.c.Close() }

// peakRSSBytes reads the process's high-water resident set (VmHWM) from
// /proc, falling back to the Go runtime's OS-memory estimate elsewhere.
func peakRSSBytes() uint64 {
	if raw, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(raw), "\n") {
			if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
				fields := strings.Fields(rest)
				if len(fields) >= 1 {
					if kb, err := strconv.ParseUint(fields[0], 10, 64); err == nil {
						return kb << 10
					}
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Sys
}

func formatBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slingest:", err)
	os.Exit(1)
}
