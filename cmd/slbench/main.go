// Command slbench measures the solver hot paths — monolithic vs
// component-decomposed, sequential vs parallel, dense vs sparse-LU basis
// engine — plus the multinomial sampling step, the warm-started grid
// sweeps, the streaming sharded ingest fold and every registered release
// mechanism end to end, and emits a machine-readable benchmark trajectory
// (BENCH_pr10.json) that future changes are compared against.
//
// Usage:
//
//	slbench [-o BENCH_pr10.json] [-profiles tiny,small,tiny-sharded,small-sharded]
//	        [-objectives output-size,diversity] [-benchtime 1s|1x] [-seed 1]
//	        [-baseline BENCH_pr2.json] [-no-sweeps]
//	        [-cpuprofile FILE] [-memprofile FILE]
//
// Each benchmark runs through testing.Benchmark, so -benchtime follows the
// go test convention (a duration, or N iterations as "Nx"). Corpus
// generation and preprocessing happen outside the timed region; the numbers
// are pure solve cost. Single-market profiles (tiny, small) form one giant
// connected component — there the decomposed rows measure the
// decomposition's overhead, not a speedup; the *-sharded profiles decompose
// into one component per market and show the win. The monolithic-dense rows
// re-run the monolithic O-UMP solve on the legacy dense basis engine: the
// dense-vs-sparse ratio at equal λ is the PR 3 headline.
//
// The {profile}/mechanism/{name} rows run each mechanism registered in
// internal/mechanism (ump, laplace, zealous, localdp) through its full
// Sanitize path at a matched e^ε = 2 budget; the gated objective is the
// released row count, which is deterministic in -seed, so the baseline
// comparison doubles as a cross-machine determinism check of every release
// path the server can dispatch to.
//
// With -baseline, slbench compares every objective value against the named
// earlier trajectory by benchmark name and exits nonzero on any mismatch:
// speed may drift between engines and machines, λ and plan objectives may
// not.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"testing"

	"dpslog/internal/dp"
	"dpslog/internal/gen"
	"dpslog/internal/ingest"
	"dpslog/internal/lp"
	"dpslog/internal/mechanism"
	"dpslog/internal/rng"
	"dpslog/internal/sampling"
	"dpslog/internal/searchlog"
	"dpslog/internal/ump"
)

// benchResult is one benchmark row of the emitted trajectory.
type benchResult struct {
	Name           string  `json:"name"`
	Profile        string  `json:"profile"`
	Objective      string  `json:"objective"`
	Mode           string  `json:"mode"`
	Parallelism    int     `json:"parallelism"`
	Components     int     `json:"components"`
	Pairs          int     `json:"pairs"`
	Users          int     `json:"users"`
	ObjectiveValue float64 `json:"objective_value"`
	N              int     `json:"n"`
	NsPerOp        float64 `json:"ns_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
}

type trajectory struct {
	PR         string        `json:"pr"`
	GoMaxProcs int           `json:"go_max_procs"`
	Seed       uint64        `json:"seed"`
	Benchtime  string        `json:"benchtime"`
	EExp       float64       `json:"eexp"`
	Delta      float64       `json:"delta"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// The paper's (e^ε, δ) grids, for the warm-started Table-4 sweep (kept in
// sync with internal/experiments; duplicated to keep slbench free of the
// experiment runner's corpus-generation weight).
var (
	eExpGrid7  = []float64{1.001, 1.01, 1.1, 1.4, 1.7, 2.0, 2.3}
	deltaGrid7 = []float64{1e-4, 1e-3, 1e-2, 1e-1, 0.2, 0.5, 0.8}
)

func main() {
	out := flag.String("o", "BENCH_pr10.json", "output JSON file (- for stdout)")
	profiles := flag.String("profiles", "tiny,small,tiny-sharded,small-sharded", "comma-separated corpus profiles")
	objectives := flag.String("objectives", "output-size,diversity", "comma-separated objectives: output-size, diversity")
	benchtime := flag.String("benchtime", "", "per-benchmark budget, go test style (e.g. 2s or 1x); empty = testing default (1s)")
	seed := flag.Uint64("seed", 1, "corpus generation seed")
	baseline := flag.String("baseline", "", "comma-separated earlier trajectory JSONs; objective values must match by name (λ drift fails the run)")
	noSweeps := flag.Bool("no-sweeps", false, "skip the warm-started table4/frontier sweep benchmarks")
	appendProfiles := flag.String("append-profiles", "tiny-sharded,small-sharded,paper-sharded", "comma-separated multi-market profiles for the continual-release append benchmark (empty = skip)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file once the benchmarks finish")
	testing.Init()
	flag.Parse()
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			fatal(err)
		}
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}

	params := dp.Params{Eps: math.Log(2), Delta: 0.5}
	traj := trajectory{
		PR:         "pr10",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       *seed,
		Benchtime:  *benchtime,
		EExp:       2.0,
		Delta:      0.5,
	}

	for _, profile := range strings.Split(*profiles, ",") {
		profile = strings.TrimSpace(profile)
		p, err := gen.Profiles(profile)
		if err != nil {
			fatal(err)
		}
		raw, err := gen.Generate(p, *seed)
		if err != nil {
			fatal(err)
		}
		pre, _ := searchlog.Preprocess(raw)

		modes := []struct {
			name       string
			opts       ump.Options
			par        int
			objectives string // empty = all
		}{
			{"monolithic", ump.Options{NoDecompose: true}, 1, ""},
			{"monolithic-dense", ump.Options{NoDecompose: true, LP: lp.Options{Engine: lp.EngineDense}}, 1, "output-size"},
			{"decomposed-p1", ump.Options{Parallelism: 1}, 1, ""},
			{"decomposed-pmax", ump.Options{}, runtime.GOMAXPROCS(0), ""},
		}
		for _, objective := range strings.Split(*objectives, ",") {
			objective = strings.TrimSpace(objective)
			for _, mode := range modes {
				if mode.objectives != "" && !strings.Contains(mode.objectives, objective) {
					continue
				}
				solve, err := solverFor(objective, pre, params, mode.opts)
				if err != nil {
					fatal(err)
				}
				// One untimed solve for the plan-shaped metadata.
				plan, err := solve()
				if err != nil {
					fatal(fmt.Errorf("%s/%s/%s: %w", profile, objective, mode.name, err))
				}
				r := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := solve(); err != nil {
							b.Fatal(err)
						}
					}
				})
				addRow(&traj, benchResult{
					Name:           fmt.Sprintf("%s/%s/%s", profile, objective, mode.name),
					Profile:        profile,
					Objective:      objective,
					Mode:           mode.name,
					Parallelism:    mode.par,
					Components:     plan.Components,
					Pairs:          pre.NumPairs(),
					Users:          pre.NumUsers(),
					ObjectiveValue: plan.Objective,
					N:              r.N,
					NsPerOp:        float64(r.NsPerOp()),
					BytesPerOp:     r.AllocedBytesPerOp(),
					AllocsPerOp:    r.AllocsPerOp(),
				})
			}
		}

		// The multinomial sampling step, for the end-to-end picture.
		counts := make([]int, pre.NumPairs())
		for i := range counts {
			counts[i] = pre.PairCount(i) / 2
		}
		g := rng.New(7)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sampling.Output(g, pre, counts); err != nil {
					b.Fatal(err)
				}
			}
		})
		addRow(&traj, benchResult{
			Name:        profile + "/sampling",
			Profile:     profile,
			Objective:   "sampling",
			Mode:        "sampling",
			Parallelism: 1,
			Components:  1,
			Pairs:       pre.NumPairs(),
			Users:       pre.NumUsers(),
			N:           r.N,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})

		// Warm-started sweep benchmarks: the experiment-layer workloads the
		// warm starts were built for, on the small profiles only (the tiny
		// ones drown in fixed costs).
		if !*noSweeps && strings.HasPrefix(profile, "small") {
			benchSweeps(&traj, profile, pre)
		}

		// The streaming sharded ingest fold, sequential vs parallel, over
		// the raw corpus bytes. The recorded objective is the ingested
		// log's total size — any drift means the streaming path no longer
		// reproduces the histogram, which is exactly what the baseline
		// gate should catch.
		benchIngest(&traj, profile, raw)

		// Every registered release mechanism, end to end.
		benchMechanisms(&traj, profile, pre, *seed)

	}

	// The continual-release incremental re-solve runs over its own profile
	// list: the ratio only exists on multi-market corpora (a single giant
	// component leaves an append nothing to reuse), and the gated profile —
	// paper-sharded, where superlinear per-component solve cost dominates
	// the linear decompose+digest overhead — is too heavy to drag through
	// the full per-profile suite above.
	for _, profile := range strings.Split(*appendProfiles, ",") {
		profile = strings.TrimSpace(profile)
		if profile == "" {
			continue
		}
		p, err := gen.Profiles(profile)
		if err != nil {
			fatal(err)
		}
		raw, err := gen.Generate(p, *seed)
		if err != nil {
			fatal(err)
		}
		benchAppend(&traj, profile, raw, params)
	}

	// Profiles are flushed before the baseline gate: a gate failure is
	// exactly when the CPU picture of the run is most wanted.
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	enc, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	for _, base := range strings.Split(*baseline, ",") {
		base = strings.TrimSpace(base)
		if base == "" {
			continue
		}
		if err := checkBaseline(traj, base); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "slbench: objective values match baseline %s\n", base)
	}
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "slbench: wrote %d benchmarks to %s\n", len(traj.Benchmarks), *out)
}

func addRow(traj *trajectory, row benchResult) {
	traj.Benchmarks = append(traj.Benchmarks, row)
	fmt.Fprintf(os.Stderr, "slbench: %-48s %12.0f ns/op  %8d allocs/op  (N=%d, comps=%d, obj=%g)\n",
		row.Name, row.NsPerOp, row.AllocsPerOp, row.N, row.Components, row.ObjectiveValue)
}

// distinctBudgets reduces the paper's 7×7 grid to its distinct merged
// budgets (the constraint system depends on min{ε, ln 1/(1−δ)} only),
// sorted ascending for determinism.
func distinctBudgets() []dp.Params {
	seen := map[float64]dp.Params{}
	for _, e := range eExpGrid7 {
		for _, d := range deltaGrid7 {
			p := dp.FromEExp(e, d)
			seen[p.Budget()] = p
		}
	}
	budgets := make([]float64, 0, len(seen))
	for b := range seen {
		budgets = append(budgets, b)
	}
	sort.Float64s(budgets)
	out := make([]dp.Params, 0, len(budgets))
	for _, b := range budgets {
		out = append(out, seen[b])
	}
	return out
}

// benchSweeps measures the table4 λ sweep (distinct budgets of the paper
// grid) and the frontier ladder (min-privacy solves for rising targets),
// cold versus warm-started, and records the summed integral objectives so
// the baseline gate covers the sweeps too.
func benchSweeps(traj *trajectory, profile string, pre *searchlog.Log) {
	budgets := distinctBudgets()
	reference := dp.FromEExp(2.0, 0.5)

	sweepLambda := func(warm bool) (float64, testing.BenchmarkResult) {
		total := 0.0
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				total = 0
				var pool *ump.WarmStarts
				if warm {
					// Anchor exactly like internal/experiments: one cold
					// solve of the reference point seeds the sticky pool;
					// every other budget warm-starts from it.
					pool = ump.NewWarmStarts(true)
					if _, err := ump.MaxOutputSize(pre, reference, ump.Options{Warm: pool}); err != nil {
						b.Fatal(err)
					}
				}
				for _, p := range budgets {
					plan, err := ump.MaxOutputSize(pre, p, ump.Options{Warm: pool})
					if err != nil {
						b.Fatal(err)
					}
					total += math.Floor(plan.RelaxationObjective)
				}
			}
		})
		return total, r
	}

	for _, mode := range []string{"cold", "warm"} {
		total, r := sweepLambda(mode == "warm")
		addRow(traj, benchResult{
			Name:           fmt.Sprintf("%s/sweep-table4/%s", profile, mode),
			Profile:        profile,
			Objective:      "sweep-table4",
			Mode:           mode,
			Parallelism:    runtime.GOMAXPROCS(0),
			Components:     len(budgets),
			Pairs:          pre.NumPairs(),
			Users:          pre.NumUsers(),
			ObjectiveValue: total,
			N:              r.N,
			NsPerOp:        float64(r.NsPerOp()),
			BytesPerOp:     r.AllocedBytesPerOp(),
			AllocsPerOp:    r.AllocsPerOp(),
		})
	}

	// Frontier ladder: targets as fractions of the reference λ.
	refPlan, err := ump.MaxOutputSize(pre, reference, ump.Options{})
	if err != nil {
		fatal(err)
	}
	ref := int(math.Floor(refPlan.RelaxationObjective))
	if ref < 4 {
		return
	}
	var targets []int
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		if t := int(frac * float64(ref)); t >= 1 {
			targets = append(targets, t)
		}
	}
	sweepFrontier := func(warm bool) (float64, testing.BenchmarkResult) {
		total := 0.0
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				total = 0
				var pool *ump.WarmStarts
				if warm {
					// Sequential ladder: rolling semantics, each step
					// continues from its predecessor's basis.
					pool = ump.NewWarmStarts(false)
				}
				for _, target := range targets {
					res, err := ump.MinPrivacy(pre, target, ump.Options{Warm: pool})
					if err != nil {
						b.Fatal(err)
					}
					total += float64(res.Plan.OutputSize)
				}
			}
		})
		return total, r
	}
	for _, mode := range []string{"cold", "warm"} {
		total, r := sweepFrontier(mode == "warm")
		addRow(traj, benchResult{
			Name:           fmt.Sprintf("%s/sweep-frontier/%s", profile, mode),
			Profile:        profile,
			Objective:      "sweep-frontier",
			Mode:           mode,
			Parallelism:    1,
			Components:     len(targets),
			Pairs:          pre.NumPairs(),
			Users:          pre.NumUsers(),
			ObjectiveValue: total,
			N:              r.N,
			NsPerOp:        float64(r.NsPerOp()),
			BytesPerOp:     r.AllocedBytesPerOp(),
			AllocsPerOp:    r.AllocsPerOp(),
		})
	}
}

// benchIngest measures ingest.Ingest over the profile's canonical TSV
// bytes at fold widths 1 and GOMAXPROCS, asserting along the way that the
// shard count does not change the digest (the ingest determinism
// invariant), and records the ingested size as the gated objective.
func benchIngest(traj *trajectory, profile string, raw *searchlog.Log) {
	var buf bytes.Buffer
	if _, err := searchlog.WriteTSV(&buf, raw); err != nil {
		fatal(err)
	}
	data := buf.Bytes()
	wantDigest := raw.Digest()
	// Fixed fold widths (not GOMAXPROCS) so benchmark names — and with
	// them the baseline comparison — are machine-independent.
	for _, shards := range []int{1, 8} {
		mode := fmt.Sprintf("shards-%d", shards)
		l, _, err := ingest.Ingest(bytes.NewReader(data), ingest.Config{Shards: shards})
		if err != nil {
			fatal(fmt.Errorf("%s/ingest/%s: %w", profile, mode, err))
		}
		if l.Digest() != wantDigest {
			fatal(fmt.Errorf("%s/ingest/%s: digest diverged from the in-memory path", profile, mode))
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, _, err := ingest.Ingest(bytes.NewReader(data), ingest.Config{Shards: shards}); err != nil {
					b.Fatal(err)
				}
			}
		})
		addRow(traj, benchResult{
			Name:           fmt.Sprintf("%s/ingest/%s", profile, mode),
			Profile:        profile,
			Objective:      "ingest",
			Mode:           mode,
			Parallelism:    shards,
			Components:     1,
			Pairs:          raw.NumPairs(),
			Users:          raw.NumUsers(),
			ObjectiveValue: float64(l.Size()),
			N:              r.N,
			NsPerOp:        float64(r.NsPerOp()),
			BytesPerOp:     r.AllocedBytesPerOp(),
			AllocsPerOp:    r.AllocsPerOp(),
		})
	}
}

// benchAppend measures the continual-release re-solve (PR 10): a ~1%
// append into one connected component of a multi-market corpus, solved
// cold versus incrementally through a component-plan cache primed with the
// pre-append solve. The incremental plan must be byte-identical to the
// cold one and reuse every untouched component — the cache may only change
// wall-clock — and on profiles with ≥ 16 components (paper-sharded) the
// incremental path must be ≥ 5× faster, the PR 10 headline gate (enforced
// in-process: the ratio is same-machine, unlike the cross-machine objective
// baseline). Smaller sharded profiles report the ratio ungated: their
// components are small enough that the linear decompose+digest floor both
// paths share compresses the achievable ratio.
func benchAppend(traj *trajectory, profile string, raw *searchlog.Log, params dp.Params) {
	pre1, _ := searchlog.Preprocess(raw)

	// v2 folds ~1% of the corpus mass onto one surviving (user, pair) cell:
	// the pair is non-unique in pre1 (so it survives preprocessing in v2
	// too) and exactly one component's content changes.
	touched := pre1.Pair(0)
	key := touched.Key()
	holder := pre1.User(touched.Entries[0].User).ID
	uc := raw.UserCounts()
	uc[holder][key] += raw.Size()/100 + 1
	v2, err := searchlog.BuildFromUserCounts(uc)
	if err != nil {
		fatal(err)
	}
	pre2, _ := searchlog.Preprocess(v2)

	solve := func(cache *ump.ComponentCache) (*ump.Plan, error) {
		return ump.MaxOutputSize(pre2, params, ump.Options{Parallelism: 1, Comp: cache})
	}
	// primed returns a cache holding the pre-append solve's per-component
	// plans — the state a server's shared cache is in when the append lands.
	primed := func() *ump.ComponentCache {
		cache := ump.NewComponentCache(0)
		if _, err := ump.MaxOutputSize(pre1, params, ump.Options{Parallelism: 1, Comp: cache}); err != nil {
			fatal(err)
		}
		return cache
	}

	// Correctness before speed: equal plans, all-but-one component reused.
	cold, err := solve(nil)
	if err != nil {
		fatal(fmt.Errorf("%s/append/cold: %w", profile, err))
	}
	inc, err := solve(primed())
	if err != nil {
		fatal(fmt.Errorf("%s/append/incremental: %w", profile, err))
	}
	if len(cold.Counts) != len(inc.Counts) {
		fatal(fmt.Errorf("%s/append: plan shapes diverged", profile))
	}
	for i := range cold.Counts {
		if cold.Counts[i] != inc.Counts[i] {
			fatal(fmt.Errorf("%s/append: incremental plan diverged from cold at pair %d", profile, i))
		}
	}
	if inc.Reused != inc.Components-1 {
		fatal(fmt.Errorf("%s/append: reused %d of %d components, want all but the touched one", profile, inc.Reused, inc.Components))
	}

	// The ratio gate below divides two measurements, so each side is the
	// best of three testing.Benchmark runs: at -benchtime 1x a single
	// descheduling blip on either side would swing a one-iteration ratio
	// far more than any real regression.
	bestOf3 := func(f func(b *testing.B)) testing.BenchmarkResult {
		best := testing.Benchmark(f)
		for i := 0; i < 2; i++ {
			if r := testing.Benchmark(f); r.NsPerOp() < best.NsPerOp() {
				best = r
			}
		}
		return best
	}
	rCold := bestOf3(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := solve(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	rInc := bestOf3(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// Re-prime outside the timed region: each iteration measures one
			// post-append re-solve against the pre-append cache state, not a
			// fully warmed second pass.
			b.StopTimer()
			cache := primed()
			b.StartTimer()
			if _, err := solve(cache); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, row := range []struct {
		mode string
		plan *ump.Plan
		r    testing.BenchmarkResult
	}{
		{"append-cold", cold, rCold},
		{"append-incremental", inc, rInc},
	} {
		addRow(traj, benchResult{
			Name:           fmt.Sprintf("%s/append/%s", profile, row.mode),
			Profile:        profile,
			Objective:      "output-size",
			Mode:           row.mode,
			Parallelism:    1,
			Components:     row.plan.Components,
			Pairs:          pre2.NumPairs(),
			Users:          pre2.NumUsers(),
			ObjectiveValue: row.plan.Objective,
			N:              row.r.N,
			NsPerOp:        float64(row.r.NsPerOp()),
			BytesPerOp:     row.r.AllocedBytesPerOp(),
			AllocsPerOp:    row.r.AllocsPerOp(),
		})
	}
	speedup := float64(rCold.NsPerOp()) / float64(rInc.NsPerOp())
	fmt.Fprintf(os.Stderr, "slbench: %s/append speedup %.2fx (cold %d ns/op, incremental %d ns/op, %d/%d components reused)\n",
		profile, speedup, rCold.NsPerOp(), rInc.NsPerOp(), inc.Reused, inc.Components)
	if inc.Components >= 16 && speedup < 5 {
		fatal(fmt.Errorf("%s/append: incremental re-solve only %.2fx faster than cold, want ≥ 5x", profile, speedup))
	}
}

// benchMechanisms runs every registered release mechanism end to end over
// the preprocessed corpus at a matched e^ε = 2 budget and records the
// released row count as the gated objective. All four paths are seeded, so
// a row-count drift on any machine means a release path changed behaviour —
// the same invariant the server's ledger identity depends on. The aggregate
// calibration matches internal/experiments: contribution bound 5 with
// δ̂ = 10⁻³ for laplace, δ = 0.5 for zealous, and localdp's pure-ε defaults
// (bound 1: its per-bit budget ε/2B would vanish at bound 5).
func benchMechanisms(traj *trajectory, profile string, pre *searchlog.Log, seed uint64) {
	ctx := context.Background()
	for _, name := range mechanism.Names() {
		m, err := mechanism.Get(name)
		if err != nil {
			fatal(err)
		}
		opts := mechanism.Options{Mechanism: name, Epsilon: math.Log(2), Seed: seed}
		switch name {
		case "ump":
			opts.Delta = 0.5
		case "laplace":
			opts.Delta, opts.D = 1e-3, 5
		case "zealous":
			opts.Delta, opts.D = 0.5, 5
		}
		rel, err := m.Sanitize(ctx, pre, opts)
		if err != nil {
			fatal(fmt.Errorf("%s/mechanism/%s: %w", profile, name, err))
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.Sanitize(ctx, pre, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		addRow(traj, benchResult{
			Name:           fmt.Sprintf("%s/mechanism/%s", profile, name),
			Profile:        profile,
			Objective:      "mechanism",
			Mode:           name,
			Parallelism:    1,
			Components:     1,
			Pairs:          pre.NumPairs(),
			Users:          pre.NumUsers(),
			ObjectiveValue: float64(rel.Rows()),
			N:              r.N,
			NsPerOp:        float64(r.NsPerOp()),
			BytesPerOp:     r.AllocedBytesPerOp(),
			AllocsPerOp:    r.AllocsPerOp(),
		})
	}
}

// checkBaseline fails when any benchmark present in both trajectories
// disagrees on its objective value: engines and machines may change speed,
// never λ or plan objectives.
func checkBaseline(traj trajectory, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base trajectory
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	baseVals := make(map[string]float64, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseVals[r.Name] = r.ObjectiveValue
	}
	var mismatches []string
	compared := 0
	for _, r := range traj.Benchmarks {
		want, ok := baseVals[r.Name]
		if !ok {
			continue
		}
		compared++
		if r.ObjectiveValue != want {
			mismatches = append(mismatches, fmt.Sprintf("%s: objective %g != baseline %g", r.Name, r.ObjectiveValue, want))
		}
	}
	if compared == 0 {
		return fmt.Errorf("baseline %s shares no benchmark names with this run", path)
	}
	if len(mismatches) > 0 {
		return fmt.Errorf("objective drift vs %s:\n  %s", path, strings.Join(mismatches, "\n  "))
	}
	return nil
}

// solverFor binds one objective solve over the preprocessed corpus.
func solverFor(objective string, pre *searchlog.Log, params dp.Params, opts ump.Options) (func() (*ump.Plan, error), error) {
	switch objective {
	case "output-size", "size":
		return func() (*ump.Plan, error) { return ump.MaxOutputSize(pre, params, opts) }, nil
	case "diversity":
		return func() (*ump.Plan, error) { return ump.Diversity(pre, params, opts) }, nil
	}
	return nil, fmt.Errorf("slbench: unknown objective %q (have output-size, diversity)", objective)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slbench:", err)
	os.Exit(1)
}
