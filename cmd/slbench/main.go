// Command slbench measures the solver hot paths — monolithic vs
// component-decomposed, sequential vs parallel — plus the multinomial
// sampling step, and emits a machine-readable benchmark trajectory
// (BENCH_pr2.json) that future changes are compared against.
//
// Usage:
//
//	slbench [-o BENCH_pr2.json] [-profiles tiny,small,tiny-sharded,small-sharded]
//	        [-objectives output-size,diversity] [-benchtime 1s|1x] [-seed 1]
//
// Each benchmark runs through testing.Benchmark, so -benchtime follows the
// go test convention (a duration, or N iterations as "Nx"). Corpus
// generation and preprocessing happen outside the timed region; the numbers
// are pure solve cost. Single-market profiles (tiny, small) form one giant
// connected component — there the decomposed rows measure the
// decomposition's overhead, not a speedup; the *-sharded profiles decompose
// into one component per market and show the win.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"

	"dpslog/internal/dp"
	"dpslog/internal/gen"
	"dpslog/internal/rng"
	"dpslog/internal/sampling"
	"dpslog/internal/searchlog"
	"dpslog/internal/ump"
)

// benchResult is one benchmark row of the emitted trajectory.
type benchResult struct {
	Name           string  `json:"name"`
	Profile        string  `json:"profile"`
	Objective      string  `json:"objective"`
	Mode           string  `json:"mode"`
	Parallelism    int     `json:"parallelism"`
	Components     int     `json:"components"`
	Pairs          int     `json:"pairs"`
	Users          int     `json:"users"`
	ObjectiveValue float64 `json:"objective_value"`
	N              int     `json:"n"`
	NsPerOp        float64 `json:"ns_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
}

type trajectory struct {
	PR         string        `json:"pr"`
	GoMaxProcs int           `json:"go_max_procs"`
	Seed       uint64        `json:"seed"`
	Benchtime  string        `json:"benchtime"`
	EExp       float64       `json:"eexp"`
	Delta      float64       `json:"delta"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_pr2.json", "output JSON file (- for stdout)")
	profiles := flag.String("profiles", "tiny,small,tiny-sharded,small-sharded", "comma-separated corpus profiles")
	objectives := flag.String("objectives", "output-size,diversity", "comma-separated objectives: output-size, diversity")
	benchtime := flag.String("benchtime", "", "per-benchmark budget, go test style (e.g. 2s or 1x); empty = testing default (1s)")
	seed := flag.Uint64("seed", 1, "corpus generation seed")
	testing.Init()
	flag.Parse()
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			fatal(err)
		}
	}

	params := dp.Params{Eps: math.Log(2), Delta: 0.5}
	traj := trajectory{
		PR:         "pr2",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       *seed,
		Benchtime:  *benchtime,
		EExp:       2.0,
		Delta:      0.5,
	}

	for _, profile := range strings.Split(*profiles, ",") {
		profile = strings.TrimSpace(profile)
		p, err := gen.Profiles(profile)
		if err != nil {
			fatal(err)
		}
		raw, err := gen.Generate(p, *seed)
		if err != nil {
			fatal(err)
		}
		pre, _ := searchlog.Preprocess(raw)

		modes := []struct {
			name string
			opts ump.Options
			par  int
		}{
			{"monolithic", ump.Options{NoDecompose: true}, 1},
			{"decomposed-p1", ump.Options{Parallelism: 1}, 1},
			{"decomposed-pmax", ump.Options{}, runtime.GOMAXPROCS(0)},
		}
		for _, objective := range strings.Split(*objectives, ",") {
			objective = strings.TrimSpace(objective)
			for _, mode := range modes {
				solve, err := solverFor(objective, pre, params, mode.opts)
				if err != nil {
					fatal(err)
				}
				// One untimed solve for the plan-shaped metadata.
				plan, err := solve()
				if err != nil {
					fatal(fmt.Errorf("%s/%s/%s: %w", profile, objective, mode.name, err))
				}
				r := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := solve(); err != nil {
							b.Fatal(err)
						}
					}
				})
				row := benchResult{
					Name:           fmt.Sprintf("%s/%s/%s", profile, objective, mode.name),
					Profile:        profile,
					Objective:      objective,
					Mode:           mode.name,
					Parallelism:    mode.par,
					Components:     plan.Components,
					Pairs:          pre.NumPairs(),
					Users:          pre.NumUsers(),
					ObjectiveValue: plan.Objective,
					N:              r.N,
					NsPerOp:        float64(r.NsPerOp()),
					BytesPerOp:     r.AllocedBytesPerOp(),
					AllocsPerOp:    r.AllocsPerOp(),
				}
				traj.Benchmarks = append(traj.Benchmarks, row)
				fmt.Fprintf(os.Stderr, "slbench: %-44s %12.0f ns/op  %8d allocs/op  (N=%d, comps=%d, obj=%g)\n",
					row.Name, row.NsPerOp, row.AllocsPerOp, row.N, row.Components, row.ObjectiveValue)
			}
		}

		// The multinomial sampling step, for the end-to-end picture.
		counts := make([]int, pre.NumPairs())
		for i := range counts {
			counts[i] = pre.PairCount(i) / 2
		}
		g := rng.New(7)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sampling.Output(g, pre, counts); err != nil {
					b.Fatal(err)
				}
			}
		})
		traj.Benchmarks = append(traj.Benchmarks, benchResult{
			Name:        profile + "/sampling",
			Profile:     profile,
			Objective:   "sampling",
			Mode:        "sampling",
			Parallelism: 1,
			Components:  1,
			Pairs:       pre.NumPairs(),
			Users:       pre.NumUsers(),
			N:           r.N,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}

	enc, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "slbench: wrote %d benchmarks to %s\n", len(traj.Benchmarks), *out)
}

// solverFor binds one objective solve over the preprocessed corpus.
func solverFor(objective string, pre *searchlog.Log, params dp.Params, opts ump.Options) (func() (*ump.Plan, error), error) {
	switch objective {
	case "output-size", "size":
		return func() (*ump.Plan, error) { return ump.MaxOutputSize(pre, params, opts) }, nil
	case "diversity":
		return func() (*ump.Plan, error) { return ump.Diversity(pre, params, opts) }, nil
	}
	return nil, fmt.Errorf("slbench: unknown objective %q (have output-size, diversity)", objective)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slbench:", err)
	os.Exit(1)
}
