// Command slstats prints Table-3 style characteristics of a search log:
// the raw corpus and the preprocessed corpus (unique pairs removed).
//
// Usage:
//
//	slstats [-aol] file.tsv
//	cat file.tsv | slstats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dpslog"
)

func main() {
	aol := flag.Bool("aol", false, "parse the 5-column AOL format instead of the canonical 4-column TSV")
	flag.Parse()

	var in io.Reader = os.Stdin
	var f *os.File
	if flag.NArg() > 0 {
		var err error
		f, err = os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "slstats:", err)
			os.Exit(1)
		}
		in = f
	}
	var l *dpslog.Log
	var err error
	if *aol {
		l, err = dpslog.ReadAOL(in)
	} else {
		l, err = dpslog.ReadTSV(in)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "slstats:", err)
		os.Exit(1)
	}
	if f != nil {
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "slstats:", err)
			os.Exit(1)
		}
	}
	pre, st := dpslog.Preprocess(l)
	fmt.Printf("raw:          %s\n", dpslog.ComputeStats(l))
	fmt.Printf("preprocessed: %s\n", dpslog.ComputeStats(pre))
	fmt.Printf("removed:      %d unique pairs, %d tuples, %d emptied users\n",
		st.RemovedPairs, st.RemovedMass, st.RemovedUsers)
}
