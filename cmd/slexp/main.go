// Command slexp regenerates the paper's evaluation tables and figures on a
// synthetic AOL-like corpus.
//
// Usage:
//
//	slexp [-profile tiny|small|paper] [-seed N] [-exp all|table4,fig3a,...]
//
// Each experiment prints as an aligned text table with calibration notes.
// See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured comparisons.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dpslog/internal/experiments"
)

func main() {
	profile := flag.String("profile", "small", "synthetic corpus profile: tiny, small or paper")
	seed := flag.Uint64("seed", 1, "corpus generation seed")
	exp := flag.String("exp", "all", "comma-separated experiment ids, 'all' (paper experiments) or 'all+ext': "+
		strings.Join(experiments.Experiments(), ",")+" + extensions "+strings.Join(experiments.ExtensionExperiments(), ","))
	reps := flag.Int("fig6-reps", 10, "sampled outputs averaged in fig6")
	flag.Parse()

	r, err := experiments.NewRunner(experiments.Config{Profile: *profile, Seed: *seed, SampleReps: *reps})
	if err != nil {
		fmt.Fprintln(os.Stderr, "slexp:", err)
		os.Exit(1)
	}

	ids := experiments.Experiments()
	switch *exp {
	case "all":
	case "all+ext":
		ids = append(ids, experiments.ExtensionExperiments()...)
	default:
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		tab, err := r.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slexp:", err)
			os.Exit(1)
		}
		fmt.Println(tab.Render())
		fmt.Printf("  (%s regenerated in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
