// Command slload is the load harness for slserve: a synthetic-arrival
// load generator, a trace synthesizer, and a recorded-trace replayer with
// per-class SLO gates. The engine lives in internal/loadgen and
// internal/replay; this command wires flags to it.
//
// Live load generation (the historical mode):
//
//	slload [-url http://localhost:8080] [-rps 20] [-duration 15s]
//	       [-arrivals poisson|uniform] [-profile tiny] [-gen-seed 1]
//	       [-eexp 2] [-delta 0.5] [-objective size] [-solver spe]
//	       [-distinct 4] [-batch 5s] [-timeout 30s]
//	       [-endpoint sanitize|lambda|stats]
//	       [-corpus NAME] [-expect-429] [-trace-out FILE]
//
// -distinct rotates the sanitization seed across N values so the run mixes
// plan-cache hits with real solves; -distinct 1 measures the pure cache
// path after the first request. The process exits non-zero if any request
// fails, making it usable as a CI smoke gate.
//
// -corpus switches to the corpus-referencing mode against a stateful
// slserve (-data-dir): the TSV corpus is uploaded ONCE to
// /v1/corpora/NAME, then every request POSTs an options-only JSON body to
// /v1/corpora/NAME/sanitize. Releases are charged against the server's
// per-corpus privacy budget; 429 budget-exhausted responses are failures
// unless -expect-429 is given, in which case they are counted separately
// and the run fails only if NO 429 is observed (the CI budget-exhaustion
// smoke gate).
//
// -trace-out FILE captures the run as a REPLAYABLE ndjson trace: a header
// line naming the synthetic corpus (profile + seed, regenerated on
// replay rather than embedded), then one line per request with its
// offset, class, method, path, body reference, expected status class and
// the observed latency/status/X-Trace-Id. Feed the file back through
// -replay to reproduce the run's per-class request mix exactly.
//
// Trace synthesis (offline, no server needed):
//
//	slload -record FILE [-profile tiny] [-gen-seed 1] [-rps 40]
//	       [-duration 5s] [-load-seed 7] [-eexp 2] [-delta 0.25]
//	       [-distinct 4] [-corpus-distinct 2] [-storm-429 25]
//	       [-corpus replay]
//
// Synthesizes a deterministic mixed trace — chunked ingest PUTs, sync and
// async sanitize, corpus-referencing sanitize (UMP plus alternating
// zealous/localdp mechanism releases), budget and stats queries, and a
// deliberate over-budget 429 storm — Poisson-paced at -rps for -duration.
// The same flags always produce the same trace, so a replayed run can be
// gated against a committed per-class count baseline.
//
// Trace replay with SLO gates:
//
//	slload -replay FILE [-url http://localhost:8080] [-speedup 1]
//	       [-n 0] [-d 0] [-slo '*:err<1%'] [-bench-out BENCH_replay.json]
//	       [-baseline BENCH_replay.json] [-batch 5s] [-timeout 30s]
//	       [-trace-out FILE]
//
// Replays the trace open-loop at its recorded timestamps (divided by
// -speedup), -n/-d bounding the replayed section, reporting batched
// p50/p95/p99 per request class. The run fails on any -slo violation
// (grammar: "class:p95<250ms,err<1%;*:p99<2s"; "none" disables the
// default '*:err<1%'), on per-class count drift against -baseline, and on
// a trace that cannot be written out intact.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	f := parseFlags()
	switch {
	case *f.record != "":
		runRecord(f)
	case *f.replayFile != "":
		runReplay(f)
	default:
		runLive(f)
	}
}

// flags is the full surface; the three modes read overlapping subsets.
type flags struct {
	base       *string
	rps        *float64
	duration   *time.Duration
	arrivals   *string
	profile    *string
	genSeed    *uint64
	eexp       *float64
	delta      *float64
	objective  *string
	solver     *string
	support    *float64
	distinct   *int
	batch      *time.Duration
	timeout    *time.Duration
	endpoint   *string
	loadSeed   *uint64
	corpusName *string
	expect429  *bool
	traceOut   *string

	record         *string
	corpusDistinct *int
	storm429       *int

	replayFile *string
	speedup    *float64
	n          *int
	d          *time.Duration
	slo        *string
	benchOut   *string
	baseline   *string
}

func parseFlags() *flags {
	f := &flags{
		base:       flag.String("url", "http://localhost:8080", "slserve base URL"),
		rps:        flag.Float64("rps", 20, "target request rate per second (live and -record modes)"),
		duration:   flag.Duration("duration", 15*time.Second, "how long to send (live) or synthesize (-record) load"),
		arrivals:   flag.String("arrivals", "poisson", "arrival process: uniform or poisson (live mode)"),
		profile:    flag.String("profile", "tiny", "synthetic corpus profile: tiny, small, paper, dense, tiny-sharded or small-sharded"),
		genSeed:    flag.Uint64("gen-seed", 1, "corpus generation seed"),
		eexp:       flag.Float64("eexp", 2.0, "privacy parameter e^ε"),
		delta:      flag.Float64("delta", 0.5, "privacy parameter δ"),
		objective:  flag.String("objective", "size", "sanitization objective (size, frequent, diversity, ...)"),
		solver:     flag.String("solver", "", "D-UMP BIP solver (diversity objectives)"),
		support:    flag.Float64("support", 0.002, "frequent-pair minimum support (objective=frequent)"),
		distinct:   flag.Int("distinct", 4, "rotate the sanitize seed across N values (1 = pure cache path)"),
		batch:      flag.Duration("batch", 5*time.Second, "latency reporting batch window"),
		timeout:    flag.Duration("timeout", 30*time.Second, "per-request timeout"),
		endpoint:   flag.String("endpoint", "sanitize", "target endpoint: sanitize, lambda or stats (live mode)"),
		loadSeed:   flag.Uint64("load-seed", 7, "arrival schedule seed (poisson, -record synthesis)"),
		corpusName: flag.String("corpus", "", "corpus-referencing mode: upload the corpus once under this name, then sanitize by reference (requires slserve -data-dir); names the stored corpus in -record mode (default replay)"),
		expect429:  flag.Bool("expect-429", false, "budget-exhausted 429s are expected: count them separately and fail only if none is seen (live mode)"),
		traceOut:   flag.String("trace-out", "", "capture the run as a replayable ndjson trace at this path"),

		record:         flag.String("record", "", "synthesize a mixed-traffic trace to this path and exit (no server contacted)"),
		corpusDistinct: flag.Int("corpus-distinct", 2, "-record: distinct corpus-release seeds; each spends (ln eexp, delta) of the per-corpus budget once, on top of the mech_sanitize class's two mechanism releases"),
		storm429:       flag.Int("storm-429", 25, "-record: deliberate over-budget requests appended as a burst, each expecting 429"),

		replayFile: flag.String("replay", "", "replay the ndjson trace at this path against -url"),
		speedup:    flag.Float64("speedup", 1, "-replay: timeline compression (2 = twice the recorded rate)"),
		n:          flag.Int("n", 0, "-replay: cap the replayed requests (0 = whole trace)"),
		d:          flag.Duration("d", 0, "-replay: cap the replayed trace time, pre-speedup (0 = whole trace)"),
		slo:        flag.String("slo", "*:err<1%", "-replay: SLO gates, e.g. 'sanitize:p95<250ms,err<1%;*:p99<2s' ('none' disables)"),
		benchOut:   flag.String("bench-out", "", "-replay: write the per-class BENCH_replay JSON report to this path"),
		baseline:   flag.String("baseline", "", "-replay: committed BENCH_replay JSON whose per-class request counts this run must reproduce exactly"),
	}
	flag.Parse()
	if *f.record != "" && *f.replayFile != "" {
		fatal(fmt.Errorf("-record and -replay are mutually exclusive"))
	}
	return f
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slload:", err)
	os.Exit(1)
}
