// Command slload is the load generator for slserve. It synthesizes a
// corpus once, then drives the service at a target request rate with
// uniform or Poisson arrivals, printing batched p50/p95/p99 latencies and a
// final summary — the harness future performance PRs regress against.
//
// Usage:
//
//	slload [-url http://localhost:8080] [-rps 20] [-duration 15s]
//	       [-arrivals poisson|uniform] [-profile tiny] [-gen-seed 1]
//	       [-eexp 2] [-delta 0.5] [-objective size] [-solver spe]
//	       [-distinct 4] [-batch 5s] [-timeout 30s]
//	       [-endpoint sanitize|lambda|stats]
//	       [-corpus NAME] [-expect-429] [-trace-out FILE]
//
// -distinct rotates the sanitization seed across N values so the run mixes
// plan-cache hits with real solves; -distinct 1 measures the pure cache
// path after the first request. The process exits non-zero if any request
// fails, making it usable as a CI smoke gate.
//
// -corpus switches to the corpus-referencing mode against a stateful
// slserve (-data-dir): the TSV corpus is uploaded ONCE to
// /v1/corpora/NAME, then every request POSTs an options-only JSON body to
// /v1/corpora/NAME/sanitize — throughput is no longer bottlenecked on
// re-sending and re-parsing the full corpus per request. Releases are
// charged against the server's per-corpus privacy budget; 429
// budget-exhausted responses are failures unless -expect-429 is given, in
// which case they are counted separately and the run fails only if NO 429
// is observed (the CI budget-exhaustion smoke gate).
//
// -trace-out FILE writes one JSON line per request — timestamp, request
// class, latency, status and the server-assigned X-Trace-Id — so a slow
// request found in the load run can be joined against the server's
// /v1/debug/traces ring buffer (or its access log) by trace ID.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"sort"
	"sync"
	"time"

	"dpslog"
	"dpslog/internal/rng"
)

func main() {
	base := flag.String("url", "http://localhost:8080", "slserve base URL")
	rps := flag.Float64("rps", 20, "target request rate per second")
	duration := flag.Duration("duration", 15*time.Second, "how long to send load")
	arrivals := flag.String("arrivals", "poisson", "arrival process: uniform or poisson")
	profile := flag.String("profile", "tiny", "synthetic corpus profile: tiny, small, paper, tiny-sharded or small-sharded")
	genSeed := flag.Uint64("gen-seed", 1, "corpus generation seed")
	eexp := flag.Float64("eexp", 2.0, "privacy parameter e^ε")
	delta := flag.Float64("delta", 0.5, "privacy parameter δ")
	objective := flag.String("objective", "size", "sanitization objective (size, frequent, diversity, ...)")
	solver := flag.String("solver", "", "D-UMP BIP solver (diversity objectives)")
	support := flag.Float64("support", 0.002, "frequent-pair minimum support (objective=frequent)")
	distinct := flag.Int("distinct", 4, "rotate the sanitize seed across N values (1 = pure cache path)")
	batch := flag.Duration("batch", 5*time.Second, "latency reporting batch window")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	endpoint := flag.String("endpoint", "sanitize", "target endpoint: sanitize, lambda or stats")
	loadSeed := flag.Uint64("load-seed", 7, "arrival schedule seed (poisson)")
	corpusName := flag.String("corpus", "", "corpus-referencing mode: upload the corpus once under this name, then sanitize by reference (requires slserve -data-dir)")
	expect429 := flag.Bool("expect-429", false, "budget-exhausted 429s are expected: count them separately and fail only if none is seen")
	traceOut := flag.String("trace-out", "", "write one JSON line per request (time, class, latency, status, trace ID) to this file")
	flag.Parse()

	if *rps <= 0 || *duration <= 0 || *distinct < 1 {
		fatal(fmt.Errorf("need -rps > 0, -duration > 0, -distinct ≥ 1"))
	}
	if *arrivals != "uniform" && *arrivals != "poisson" {
		fatal(fmt.Errorf("unknown arrival process %q (want uniform or poisson)", *arrivals))
	}

	corpus, err := dpslog.Generate(*profile, *genSeed)
	if err != nil {
		fatal(err)
	}
	var body bytes.Buffer
	if _, err := dpslog.WriteTSV(&body, corpus); err != nil {
		fatal(err)
	}
	payload := body.Bytes()

	var target string
	q := url.Values{}
	var baseOpts dpslog.Options
	if *corpusName != "" {
		*endpoint = "corpus"
	}
	switch *endpoint {
	case "sanitize":
		q.Set("eexp", fmt.Sprint(*eexp))
		q.Set("delta", fmt.Sprint(*delta))
		q.Set("objective", *objective)
		if *solver != "" {
			q.Set("solver", *solver)
		}
		if *objective == "frequent" || *objective == "combined" {
			q.Set("support", fmt.Sprint(*support))
		}
		target = *base + "/v1/sanitize"
	case "lambda":
		target = *base + "/v1/lambda"
	case "stats":
		target = *base + "/v1/stats"
	case "corpus":
		obj, err := dpslog.ParseObjective(*objective)
		if err != nil {
			fatal(err)
		}
		baseOpts = dpslog.Options{
			Epsilon:   math.Log(*eexp),
			Delta:     *delta,
			Objective: obj,
			Solver:    *solver,
		}
		if *objective == "frequent" || *objective == "combined" {
			baseOpts.MinSupport = *support
		}
		target = *base + "/v1/corpora/" + *corpusName + "/sanitize"
	default:
		fatal(fmt.Errorf("unknown endpoint %q", *endpoint))
	}

	client := &http.Client{Timeout: *timeout}
	if *endpoint == "corpus" {
		// Upload once; every subsequent request references the corpus by
		// name with an options-only body.
		if err := uploadCorpus(client, *base, *corpusName, payload); err != nil {
			fatal(err)
		}
		fmt.Printf("slload: uploaded corpus %q (%d bytes) once; requests carry options only\n",
			*corpusName, len(payload))
	}

	fmt.Printf("slload: %s profile (%d tuples, %d users) → %s at %.1f rps (%s arrivals) for %s\n",
		*profile, corpus.Size(), corpus.NumUsers(), target, *rps, *arrivals, *duration)

	var traceW io.Writer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		traceW = f
	}

	results := make(chan result, 1024)
	collectDone := make(chan summary, 1)
	go collect(results, *batch, *expect429, traceW, collectDone)

	g := rng.New(*loadSeed)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(*duration)
	next := start
	for i := 0; ; i++ {
		if *arrivals == "uniform" {
			next = next.Add(time.Duration(float64(time.Second) / *rps))
		} else {
			// Exponential inter-arrival with rate rps.
			next = next.Add(time.Duration(-math.Log(1-g.Float64()) / *rps * float64(time.Second)))
		}
		if next.After(deadline) {
			break
		}
		time.Sleep(time.Until(next))
		wg.Add(1)
		go func(seq int) {
			defer wg.Done()
			results <- fire(client, *endpoint, target, q, payload, baseOpts, *eexp, *delta, seq%*distinct+1)
		}(i)
	}
	wg.Wait()
	close(results)
	sum := <-collectDone

	elapsed := time.Since(start).Seconds()
	fail := sum.sent - sum.ok - sum.exhausted
	fmt.Printf("slload: total sent=%d ok=%d fail=%d budget_exhausted=%d achieved=%.1f rps  %s\n",
		sum.sent, sum.ok, fail, sum.exhausted, float64(sum.sent)/elapsed, percentiles(sum.latencies))
	if fail > 0 {
		os.Exit(1)
	}
	if *expect429 && sum.exhausted == 0 {
		fmt.Fprintln(os.Stderr, "slload: -expect-429 set but the budget never exhausted")
		os.Exit(1)
	}
}

// uploadCorpus PUTs the TSV corpus under name, the once-per-run step of
// the corpus-referencing mode.
func uploadCorpus(client *http.Client, base, name string, tsv []byte) error {
	req, err := http.NewRequest(http.MethodPut, base+"/v1/corpora/"+name, bytes.NewReader(tsv))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/tab-separated-values")
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("upload corpus: %w", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("upload corpus: status %d: %s", resp.StatusCode, body)
	}
	return nil
}

type result struct {
	start   time.Time
	class   string
	latency time.Duration
	status  int
	traceID string
	err     error
}

type summary struct {
	sent, ok, exhausted int
	latencies           []time.Duration
}

// fire issues one request and classifies the outcome. Sanitize and stats
// send the TSV corpus; lambda sends a small JSON envelope with the corpus
// inlined as TSV; corpus mode sends an options-only envelope referencing
// the uploaded corpus.
func fire(client *http.Client, endpoint, target string, q url.Values, payload []byte, baseOpts dpslog.Options, eexp, delta float64, seed int) result {
	var (
		req *http.Request
		err error
	)
	switch endpoint {
	case "lambda":
		env := fmt.Sprintf(`{"eexp":%g,"delta":%g,"tsv":%q}`, eexp, delta, payload)
		req, err = http.NewRequest("POST", target, bytes.NewReader([]byte(env)))
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	case "corpus":
		opts := baseOpts
		opts.Seed = uint64(seed)
		env, merr := json.Marshal(map[string]dpslog.Options{"options": opts})
		if merr != nil {
			return result{err: merr}
		}
		req, err = http.NewRequest("POST", target, bytes.NewReader(env))
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	default:
		qq := make(url.Values, len(q)+1)
		for k, v := range q {
			qq[k] = v
		}
		if endpoint == "sanitize" {
			qq.Set("seed", fmt.Sprint(seed))
		}
		u := target
		if len(qq) > 0 {
			u += "?" + qq.Encode()
		}
		req, err = http.NewRequest("POST", u, bytes.NewReader(payload))
		if req != nil {
			req.Header.Set("Content-Type", "text/tab-separated-values")
		}
	}
	if err != nil {
		return result{class: endpoint, err: err}
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return result{start: start, class: endpoint, err: err}
	}
	defer resp.Body.Close()
	r := result{start: start, class: endpoint, traceID: resp.Header.Get("X-Trace-Id")}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		r.err = err
		return r
	}
	r.latency = time.Since(start)
	r.status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		r.err = fmt.Errorf("status %d", resp.StatusCode)
	}
	return r
}

// traceRecord is one -trace-out JSON line.
type traceRecord struct {
	Time      string  `json:"time"`
	Class     string  `json:"class"`
	LatencyMS float64 `json:"latency_ms"`
	Status    int     `json:"status,omitempty"`
	TraceID   string  `json:"trace_id,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// collect aggregates results, printing one line per batch window and
// returning the whole-run summary when the results channel closes. With
// expect429, budget-exhausted 429 responses are an expected outcome class
// rather than failures. collect is the sole writer of the -trace-out
// stream, so concurrent request goroutines never interleave lines.
func collect(results <-chan result, window time.Duration, expect429 bool, traceW io.Writer, done chan<- summary) {
	var sum summary
	var batch []time.Duration
	batchStart := time.Now()
	batchFail, batch429 := 0, 0
	tick := time.NewTicker(window)
	defer tick.Stop()
	flush := func() {
		if len(batch) == 0 && batchFail == 0 && batch429 == 0 {
			return
		}
		fmt.Printf("slload: batch %5.1fs sent=%d ok=%d fail=%d budget_exhausted=%d  %s\n",
			time.Since(batchStart).Seconds(), len(batch)+batchFail+batch429, len(batch), batchFail, batch429, percentiles(batch))
		batch, batchFail, batch429 = nil, 0, 0
		batchStart = time.Now()
	}
	for {
		select {
		case r, ok := <-results:
			if !ok {
				flush()
				done <- sum
				return
			}
			if traceW != nil {
				rec := traceRecord{
					Time:      r.start.UTC().Format(time.RFC3339Nano),
					Class:     r.class,
					LatencyMS: float64(r.latency.Microseconds()) / 1000,
					Status:    r.status,
					TraceID:   r.traceID,
				}
				if r.err != nil {
					rec.Error = r.err.Error()
				}
				if line, err := json.Marshal(rec); err == nil {
					fmt.Fprintf(traceW, "%s\n", line)
				}
			}
			sum.sent++
			if expect429 && r.status == http.StatusTooManyRequests {
				sum.exhausted++
				batch429++
				continue
			}
			if r.err != nil {
				fmt.Fprintf(os.Stderr, "slload: request failed: %v\n", r.err)
				batchFail++
				continue
			}
			sum.ok++
			sum.latencies = append(sum.latencies, r.latency)
			batch = append(batch, r.latency)
		case <-tick.C:
			flush()
		}
	}
}

// percentiles renders p50/p95/p99/max of the given latencies.
func percentiles(lat []time.Duration) string {
	if len(lat) == 0 {
		return "p50=- p95=- p99=- max=-"
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	pick := func(p float64) time.Duration {
		i := int(math.Ceil(p*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	return fmt.Sprintf("p50=%s p95=%s p99=%s max=%s",
		round(pick(0.50)), round(pick(0.95)), round(pick(0.99)), round(s[len(s)-1]))
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slload:", err)
	os.Exit(1)
}
