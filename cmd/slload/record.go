package main

// The -record mode: synthesize a deterministic mixed-traffic trace from a
// gen profile, offline.

import (
	"fmt"
	"sort"

	"dpslog/internal/replay"
)

func runRecord(f *flags) {
	cfg := replay.SynthConfig{
		Profile:        *f.profile,
		GenSeed:        *f.genSeed,
		RPS:            *f.rps,
		Duration:       *f.duration,
		Seed:           *f.loadSeed,
		EExp:           *f.eexp,
		Delta:          *f.delta,
		Distinct:       *f.distinct,
		CorpusDistinct: *f.corpusDistinct,
		Storm429:       *f.storm429,
		CorpusName:     *f.corpusName,
		CreatedBy:      "slload -record",
		Objective:      *f.objective,
	}
	tr, err := replay.Synthesize(cfg)
	if err != nil {
		fatal(err)
	}
	if err := tr.WriteFile(*f.record); err != nil {
		fatal(err)
	}
	counts := tr.ClassCounts()
	total := 0
	for _, n := range counts {
		total += n
	}
	fmt.Printf("slload: recorded %d requests over %s to %s\n", total, *f.duration, *f.record)
	for _, class := range sortedCountKeys(counts) {
		fmt.Printf("slload:   class %-16s %d\n", class, counts[class])
	}
}

func sortedCountKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
