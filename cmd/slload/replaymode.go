package main

// The -replay mode: drive a recorded trace against slserve and gate the
// outcome on per-class SLOs and a committed count baseline.

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dpslog/internal/loadgen"
	"dpslog/internal/replay"
)

func runReplay(f *flags) {
	tr, err := replay.ReadFile(*f.replayFile)
	if err != nil {
		fatal(err)
	}
	var slos []replay.SLO
	if *f.slo != "" && *f.slo != "none" {
		slos, err = replay.ParseSLOs(*f.slo)
		if err != nil {
			fatal(err)
		}
	}
	var capture *loadgen.TraceWriter
	if *f.traceOut != "" {
		capture, err = loadgen.CreateTrace(*f.traceOut)
		if err != nil {
			fatal(err)
		}
		h := tr.Header
		h.Base = *f.base
		h.CreatedBy = "slload -replay"
		capture.Write(h)
	}

	counts := tr.ClassCounts()
	fmt.Printf("slload: replaying %s (%d requests, %d classes) against %s at %gx\n",
		*f.replayFile, len(tr.Records), len(counts), *f.base, *f.speedup)

	sum, elapsed, err := replay.Run(tr, replay.Config{
		BaseURL: *f.base,
		Client:  replay.NewClient(*f.timeout),
		Speedup: *f.speedup,
		N:       *f.n,
		D:       *f.d,
		Window:  *f.batch,
		Capture: capture,
		Prefix:  "slload",
	})
	if err != nil {
		fatal(err)
	}

	for _, class := range sum.ClassNames() {
		st := sum.Classes[class]
		fmt.Printf("slload: class %-16s sent=%d ok=%d fail=%d budget_exhausted=%d  %s\n",
			class, st.Sent, st.OK, st.Errors(), st.Exhausted, loadgen.FormatLatencies(st.Latencies))
	}
	fmt.Printf("slload: total sent=%d ok=%d fail=%d budget_exhausted=%d achieved=%.1f rps in %s\n",
		sum.Sent, sum.OK, sum.Errors(), sum.Exhausted,
		float64(sum.Sent)/max(elapsed.Seconds(), 1e-9), elapsed.Round(time.Millisecond))

	violations := replay.Evaluate(slos, sum.Classes)
	// The basename keeps the committed baseline machine-independent.
	report := replay.BuildReport(filepath.Base(*f.replayFile), *f.speedup, sum, elapsed, violations)
	exit := 0
	if *f.benchOut != "" {
		if err := report.WriteFile(*f.benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "slload: writing %s: %v\n", *f.benchOut, err)
			exit = 1
		}
	}
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "slload: SLO violation: %s\n", v)
		exit = 1
	}
	if len(violations) == 0 && len(slos) > 0 {
		fmt.Printf("slload: all SLOs met (%s)\n", *f.slo)
	}
	if *f.baseline != "" {
		if err := report.CheckBaseline(*f.baseline); err != nil {
			fmt.Fprintf(os.Stderr, "slload: %v\n", err)
			exit = 1
		} else {
			fmt.Printf("slload: per-class counts match baseline %s\n", *f.baseline)
		}
	}
	if capture != nil {
		if err := capture.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "slload: writing %s: %v\n", *f.traceOut, err)
			exit = 1
		}
	}
	os.Exit(exit)
}
