package main

// The live load-generation mode: synthetic uniform/Poisson arrivals
// against one endpoint, optionally captured as a replayable trace.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/url"
	"os"
	"sync"
	"time"

	"dpslog"
	"dpslog/internal/loadgen"
	"dpslog/internal/replay"
)

func runLive(f *flags) {
	if *f.rps <= 0 || *f.duration <= 0 || *f.distinct < 1 {
		fatal(fmt.Errorf("need -rps > 0, -duration > 0, -distinct ≥ 1"))
	}
	if *f.arrivals != "uniform" && *f.arrivals != "poisson" {
		fatal(fmt.Errorf("unknown arrival process %q (want uniform or poisson)", *f.arrivals))
	}

	corpus, err := dpslog.Generate(*f.profile, *f.genSeed)
	if err != nil {
		fatal(err)
	}
	var body bytes.Buffer
	if _, err := dpslog.WriteTSV(&body, corpus); err != nil {
		fatal(err)
	}
	payloads := map[string][]byte{"corpus": body.Bytes()}

	endpoint := *f.endpoint
	if *f.corpusName != "" {
		endpoint = "corpus"
	}
	expect := "2xx"
	if *f.expect429 {
		expect = "2xx,429"
	}

	// request builds the i-th descriptor: the replayable record the run
	// both executes and (with -trace-out) captures.
	var request func(i int) replay.Record
	switch endpoint {
	case "sanitize":
		q := url.Values{}
		q.Set("eexp", fmt.Sprint(*f.eexp))
		q.Set("delta", fmt.Sprint(*f.delta))
		q.Set("objective", *f.objective)
		if *f.solver != "" {
			q.Set("solver", *f.solver)
		}
		if *f.objective == "frequent" || *f.objective == "combined" {
			q.Set("support", fmt.Sprint(*f.support))
		}
		request = func(i int) replay.Record {
			qq := url.Values{}
			for k, v := range q {
				qq[k] = v
			}
			qq.Set("seed", fmt.Sprint(i%*f.distinct+1))
			return replay.Record{
				Class:       "sanitize",
				Method:      "POST",
				Path:        "/v1/sanitize?" + qq.Encode(),
				ContentType: "text/tab-separated-values",
				BodyRef:     "corpus",
				Expect:      expect,
			}
		}
	case "lambda":
		env, err := loadgen.LambdaEnvelope(*f.eexp, *f.delta, payloads["corpus"])
		if err != nil {
			fatal(err)
		}
		request = func(int) replay.Record {
			return replay.Record{
				Class:       "lambda",
				Method:      "POST",
				Path:        "/v1/lambda",
				ContentType: "application/json",
				Body:        string(env),
				Expect:      expect,
			}
		}
	case "stats":
		request = func(int) replay.Record {
			return replay.Record{
				Class:       "stats",
				Method:      "POST",
				Path:        "/v1/stats",
				ContentType: "text/tab-separated-values",
				BodyRef:     "corpus",
				Expect:      expect,
			}
		}
	case "corpus":
		obj, err := dpslog.ParseObjective(*f.objective)
		if err != nil {
			fatal(err)
		}
		baseOpts := dpslog.Options{
			Epsilon:   math.Log(*f.eexp),
			Delta:     *f.delta,
			Objective: obj,
			Solver:    *f.solver,
		}
		if *f.objective == "frequent" || *f.objective == "combined" {
			baseOpts.MinSupport = *f.support
		}
		path := "/v1/corpora/" + *f.corpusName + "/sanitize"
		request = func(i int) replay.Record {
			opts := baseOpts
			opts.Seed = uint64(i%*f.distinct + 1)
			env, _ := json.Marshal(struct {
				Options dpslog.Options `json:"options"`
			}{opts})
			return replay.Record{
				Class:       "corpus",
				Method:      "POST",
				Path:        path,
				ContentType: "application/json",
				Body:        string(env),
				Expect:      expect,
			}
		}
	default:
		fatal(fmt.Errorf("unknown endpoint %q", endpoint))
	}

	client := replay.NewClient(*f.timeout)

	var traceW *loadgen.TraceWriter
	if *f.traceOut != "" {
		traceW, err = loadgen.CreateTrace(*f.traceOut)
		if err != nil {
			fatal(err)
		}
		traceW.Write(replay.Header{
			V:         replay.Version,
			Kind:      "header",
			Base:      *f.base,
			CreatedBy: "slload",
			Payloads:  map[string]replay.Payload{"corpus": {Profile: *f.profile, Seed: *f.genSeed}},
		})
	}

	results := make(chan loadgen.Result, 1024)
	collector := &loadgen.Collector{Window: *f.batch, Trace: traceW}
	done := make(chan loadgen.Summary, 1)
	go func() { done <- collector.Run(results) }()

	start := time.Now()
	// stamp records the actual request offset so a captured trace replays
	// the run's arrivals, not its intentions.
	stamp := func(rec replay.Record, res loadgen.Result) loadgen.Result {
		rec.TMS = float64(res.Start.Sub(start)) / float64(time.Millisecond)
		res.TraceLine = rec.WithResult(res)
		return res
	}

	if endpoint == "corpus" {
		// Upload once; every subsequent request references the corpus by
		// name with an options-only body. Captured as a setup record so a
		// replayed trace re-creates the corpus before its timed section.
		up := replay.Record{
			Class:       "setup",
			Setup:       true,
			Method:      "PUT",
			Path:        "/v1/corpora/" + *f.corpusName,
			ContentType: "text/tab-separated-values",
			BodyRef:     "corpus",
		}
		res := replay.Exec(client, *f.base, up, payloads)
		if loadgen.Classify(res) != loadgen.OutcomeOK {
			fatal(fmt.Errorf("upload corpus: status %d err %v", res.Status, res.Err))
		}
		results <- stamp(up, res)
		fmt.Printf("slload: uploaded corpus %q (%d bytes) once; requests carry options only\n",
			*f.corpusName, len(payloads["corpus"]))
	}

	fmt.Printf("slload: %s profile (%d tuples, %d users) → %s%s at %.1f rps (%s arrivals) for %s\n",
		*f.profile, corpus.Size(), corpus.NumUsers(), *f.base, request(0).Path, *f.rps, *f.arrivals, *f.duration)

	var sched loadgen.Schedule
	if *f.arrivals == "uniform" {
		sched = loadgen.UniformSchedule(*f.rps)
	} else {
		sched = loadgen.PoissonSchedule(*f.rps, *f.loadSeed)
	}
	var wg sync.WaitGroup
	loadgen.Pace(sched, loadgen.Limits{D: *f.duration}, nil, func(i int) {
		rec := request(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- stamp(rec, replay.Exec(client, *f.base, rec, payloads))
		}()
	})
	wg.Wait()
	close(results)
	sum := <-done

	elapsed := time.Since(start).Seconds()
	fmt.Printf("slload: total sent=%d ok=%d fail=%d budget_exhausted=%d achieved=%.1f rps  %s\n",
		sum.Sent, sum.OK, sum.Errors(), sum.Exhausted, float64(sum.Sent)/elapsed, loadgen.FormatLatencies(sum.Latencies))
	exit := 0
	if sum.Errors() > 0 {
		exit = 1
	}
	if *f.expect429 && sum.Exhausted == 0 {
		fmt.Fprintln(os.Stderr, "slload: -expect-429 set but the budget never exhausted")
		exit = 1
	}
	if traceW != nil {
		// A truncated or unwritable trace fails the run: downstream replays
		// gate CI, so a silently short capture is worse than a loud one.
		if err := traceW.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "slload: writing %s: %v\n", *f.traceOut, err)
			exit = 1
		}
	}
	os.Exit(exit)
}
