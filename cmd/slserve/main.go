// Command slserve runs the HTTP sanitization service: the dpslog library
// behind a JSON/TSV API with a bounded worker pool, an async job store, an
// LRU plan cache and Prometheus metrics (see internal/server for the
// endpoint reference).
//
// Usage:
//
//	slserve [-addr :8080] [-ops-addr ADDR] [-workers N] [-queue N] [-cache N]
//	        [-max-jobs N] [-max-body BYTES] [-solve-parallelism N]
//	        [-data-dir DIR] [-budget-eexp X | -budget-epsilon X]
//	        [-budget-delta X] [-mechanisms LIST] [-ingest-shards N]
//	        [-ingest-chunk BYTES] [-max-ingest-bytes BYTES]
//	        [-max-corpus-bytes BYTES] [-comp-cache N] [-legacy-errors]
//	        [-trace-buffer N] [-quiet]
//
// The sanitize endpoints dispatch on ?mechanism= (or the JSON "mechanism"
// option): ump (the paper's pipeline, default), laplace, zealous, localdp.
// -mechanisms restricts which of them this deployment will run (comma-
// separated wire names; empty allows all).
//
// Observability: every API request runs under a trace whose ID is echoed in
// the X-Trace-Id response header and logged as one structured JSON line on
// stderr; ?debug=trace on the sanitize endpoints returns the span tree
// inline, and GET /v1/debug/traces serves the ring buffer of recent traces
// (-trace-buffer sizes it). With -ops-addr, a second listener serves the
// operational surface: net/http/pprof under /debug/pprof/, /healthz,
// /readyz (readiness gates on the corpus store being open and the ledger
// journal fully replayed) and /metrics.
//
// With -data-dir, the stateful corpus subsystem is enabled: corpora are
// uploaded once to /v1/corpora/{name} and sanitized by reference, every
// release charged against the per-corpus (ε, δ) budget; the release
// journal under the data directory is replayed on restart, so accounting
// survives crashes. POST /v1/corpora/{name}/append folds new rows into a
// new immutable corpus version with its own digest and budget; the shared
// component-plan cache (-comp-cache) makes the re-solve after an append
// incremental, re-solving only the connected components the appended rows
// touched.
//
// Every non-2xx response carries the structured error envelope {"error",
// "code", "status", "detail"?}; -legacy-errors reverts to the historical
// {"error"}-only body for one release while clients migrate.
//
// Corpus uploads stream through the sharded ingest fold (see
// internal/ingest): the body is never slurped, memory is bounded by the
// aggregated histogram, and -max-ingest-bytes admission-controls the
// declared bytes of concurrent uploads (excess uploads get 503).
// -ingest-shards sets the fold parallelism, -ingest-chunk the streaming
// reader's chunk size, -max-corpus-bytes the per-upload body cap; the
// /metrics exposition reports rows/sec, shard skew and the peak-heap
// estimate of the latest ingest.
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests for up to 10 seconds.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"math"
	"net/http"
	"os"
	"os/signal"
	"slices"
	"strings"
	"syscall"
	"time"

	"dpslog"
	"dpslog/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	opsAddr := flag.String("ops-addr", "", "operational listener address (pprof, healthz, readyz, metrics); empty disables")
	traceBuffer := flag.Int("trace-buffer", 0, "retained request traces for /v1/debug/traces (0 = 128)")
	quiet := flag.Bool("quiet", false, "suppress per-request JSON access logging")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "worker pool backlog (0 = 4×workers)")
	cache := flag.Int("cache", 0, "plan cache entries (0 = 128, negative disables)")
	maxJobs := flag.Int("max-jobs", 0, "retained async jobs (0 = 1024)")
	maxBody := flag.Int64("max-body", 0, "request body cap in bytes (0 = 32 MiB)")
	solvePar := flag.Int("solve-parallelism", 0, "component parallelism per solve when the request omits it (0 = 1, sequential; negative = GOMAXPROCS)")
	dataDir := flag.String("data-dir", "", "enable the stateful corpus store + privacy ledger under this directory (empty = stateless mode)")
	budgetEExp := flag.Float64("budget-eexp", 0, "per-corpus privacy budget as e^ε (overrides -budget-epsilon; 0 = default ln 16)")
	budgetEps := flag.Float64("budget-epsilon", 0, "per-corpus privacy budget ε (0 = default ln 16)")
	budgetDelta := flag.Float64("budget-delta", 0, "per-corpus privacy budget δ (0 = default 1.0)")
	mechanisms := flag.String("mechanisms", "", "comma-separated mechanism allowlist (ump, laplace, zealous, localdp; empty = all)")
	ingestShards := flag.Int("ingest-shards", 0, "fold workers per streaming corpus upload (0 = GOMAXPROCS)")
	ingestChunk := flag.Int("ingest-chunk", 0, "streaming reader chunk size in bytes (0 = 256 KiB)")
	maxIngest := flag.Int64("max-ingest-bytes", 0, "declared bytes of concurrent corpus uploads admitted at once (0 = 256 MiB, negative = unguarded)")
	maxCorpus := flag.Int64("max-corpus-bytes", 0, "per-upload corpus body cap in bytes (0 = 8 GiB, negative = uncapped)")
	compCache := flag.Int("comp-cache", 0, "component-plan cache entries for incremental post-append re-solves (0 = 4096, negative disables)")
	legacyErrors := flag.Bool("legacy-errors", false, "serve pre-envelope {\"error\"} bodies without code/status/detail (one-release migration aid)")
	flag.Parse()

	budget := dpslog.Budget{Epsilon: *budgetEps, Delta: *budgetDelta}
	if *budgetEExp != 0 {
		budget.Epsilon = math.Log(*budgetEExp)
	}
	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	var allowed []string
	if *mechanisms != "" {
		for _, name := range strings.Split(*mechanisms, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !slices.Contains(dpslog.Mechanisms(), name) {
				fatal(fmt.Errorf("-mechanisms: unknown mechanism %q (valid: %s)", name, strings.Join(dpslog.Mechanisms(), ", ")))
			}
			allowed = append(allowed, name)
		}
	}
	srv, err := server.New(server.Config{
		Workers:          *workers,
		Queue:            *queue,
		CacheSize:        *cache,
		MaxJobs:          *maxJobs,
		MaxBodyBytes:     *maxBody,
		SolveParallelism: *solvePar,
		DataDir:          *dataDir,
		Budget:           budget,
		Mechanisms:       allowed,
		IngestShards:     *ingestShards,
		IngestChunkBytes: *ingestChunk,
		MaxIngestBytes:   *maxIngest,
		MaxCorpusBytes:   *maxCorpus,
		CompCacheSize:    *compCache,
		LegacyErrors:     *legacyErrors,
		TraceBuffer:      *traceBuffer,
		Logger:           logger,
	})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	hs := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 2)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("slserve: listening on %s", *addr)

	var ops *http.Server
	if *opsAddr != "" {
		ops = &http.Server{Addr: *opsAddr, Handler: srv.OpsHandler()}
		go func() { errc <- ops.ListenAndServe() }()
		log.Printf("slserve: ops listener (pprof, readyz, metrics) on %s", *opsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case s := <-sig:
		log.Printf("slserve: %v, shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if ops != nil {
			_ = ops.Shutdown(ctx)
		}
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slserve:", err)
	os.Exit(1)
}
