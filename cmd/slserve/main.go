// Command slserve runs the HTTP sanitization service: the dpslog library
// behind a JSON/TSV API with a bounded worker pool, an async job store, an
// LRU plan cache and Prometheus metrics (see internal/server for the
// endpoint reference).
//
// Usage:
//
//	slserve [-addr :8080] [-workers N] [-queue N] [-cache N]
//	        [-max-jobs N] [-max-body BYTES] [-solve-parallelism N]
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests for up to 10 seconds.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dpslog/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "worker pool backlog (0 = 4×workers)")
	cache := flag.Int("cache", 0, "plan cache entries (0 = 128, negative disables)")
	maxJobs := flag.Int("max-jobs", 0, "retained async jobs (0 = 1024)")
	maxBody := flag.Int64("max-body", 0, "request body cap in bytes (0 = 32 MiB)")
	solvePar := flag.Int("solve-parallelism", 0, "component parallelism per solve when the request omits it (0 = 1, sequential; negative = GOMAXPROCS)")
	flag.Parse()

	srv := server.New(server.Config{
		Workers:          *workers,
		Queue:            *queue,
		CacheSize:        *cache,
		MaxJobs:          *maxJobs,
		MaxBodyBytes:     *maxBody,
		SolveParallelism: *solvePar,
	})
	defer srv.Close()

	hs := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("slserve: listening on %s", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case s := <-sig:
		log.Printf("slserve: %v, shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slserve:", err)
	os.Exit(1)
}
