// Command slgen generates a synthetic AOL-like click-through search log in
// the canonical 4-column TSV format (user, query, url, count).
//
// Usage:
//
//	slgen [-profile tiny|small|paper|tiny-sharded|small-sharded|paper-sharded] [-seed N] [-o file] [-preprocess]
package main

import (
	"flag"
	"fmt"
	"os"

	"dpslog"
)

func main() {
	profile := flag.String("profile", "small", "corpus profile: tiny, small, paper, tiny-sharded, small-sharded or paper-sharded")
	seed := flag.Uint64("seed", 1, "generation seed")
	out := flag.String("o", "", "output file (default stdout)")
	pre := flag.Bool("preprocess", false, "remove unique query-url pairs before writing")
	flag.Parse()

	l, err := dpslog.Generate(*profile, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slgen:", err)
		os.Exit(1)
	}
	if *pre {
		l, _ = dpslog.Preprocess(l)
	}
	w := os.Stdout
	var f *os.File
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slgen:", err)
			os.Exit(1)
		}
		w = f
	}
	n, err := dpslog.WriteTSV(w, l)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slgen:", err)
		os.Exit(1)
	}
	// Close carries the final flush error; a silently truncated corpus must
	// fail the command, not surface as a digest mismatch later.
	if f != nil {
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "slgen:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "slgen: wrote %d rows (%s)\n", n, dpslog.ComputeStats(l))
}
