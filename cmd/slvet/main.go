// Command slvet runs the project's static-analysis suite (internal/analysis)
// over the repository: the privacy and durability invariants the compiler
// cannot see, encoded as analyzers and gated in CI.
//
// Usage:
//
//	slvet [-list] [-json] [packages...]
//
// Package patterns are module-relative directories, recursive with a /...
// suffix; the default is ./... . Exit status is 1 when findings are
// reported, 2 on usage or load errors.
//
// Deliberate exceptions are suppressed in the source with
//
//	//slvet:ignore <analyzer> <reason>
//
// on the finding's line or the line directly above; the reason is
// mandatory. See DESIGN.md §12 for each analyzer's rule and rationale.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dpslog/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as JSON")
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, module, err := findModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "slvet:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := analysis.Run(root, module, patterns, analysis.All)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slvet:", err)
		os.Exit(2)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]finding, 0, len(findings))
		for _, f := range findings {
			out = append(out, finding{rel(root, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message})
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "slvet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", rel(root, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "slvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// rel shortens absolute file names to module-relative ones for stable,
// clickable output.
func rel(root, file string) string {
	if r, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return file
}

// findModule walks up from the working directory to the enclosing go.mod
// and reads the module path from it.
func findModule() (root, module string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if _, statErr := os.Stat(gomod); statErr == nil {
			f, err := os.Open(gomod)
			if err != nil {
				return "", "", err
			}
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					f.Close()
					return dir, strings.TrimSpace(rest), nil
				}
			}
			f.Close()
			return "", "", fmt.Errorf("no module line in %s", gomod)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
