package dpslog

import (
	"dpslog/internal/metrics"
)

// FrequentSet maps frequent pairs to their support.
type FrequentSet = metrics.FrequentSet

// FrequentPairs extracts the pairs of l with support ≥ s (c_ij/|D| ≥ s).
func FrequentPairs(l *Log, s float64) FrequentSet { return metrics.FrequentPairs(l, s) }

// PrecisionRecall computes the paper's Equation 9 between the input's
// frequent set S0 and the output's frequent set S.
func PrecisionRecall(s0, s FrequentSet) (precision, recall float64) {
	return metrics.PrecisionRecall(s0, s)
}

// SupportDistances evaluates the F-UMP objective (Equation 5) for a plan of
// output counts over the input's frequent pairs: the sum and average of
// |x_ij/|O| − c_ij/|D||, plus the frequent-pair count.
func SupportDistances(in *Log, counts []int, minSupport float64) (sum, avg float64, frequent int) {
	return metrics.SupportDistances(in, counts, minSupport)
}

// RetainedDiversity is the fraction of the input's distinct pairs retained
// by a plan (Figure 4's measure).
func RetainedDiversity(in *Log, counts []int) float64 {
	return metrics.RetainedDiversity(in, counts)
}

// TripletHistogram bins the DiffRatio (Equation 10) of every retained input
// triplet (q_i, u_j, s_k) into `buckets` bins over [0, 100%]; ratios ≥ 100%
// land in the last bin (Figure 6). minSupport > 0 restricts to triplets of
// input-frequent pairs; minCount > 0 restricts to triplets with
// c_ijk ≥ minCount (triplets below the release's resolution).
func TripletHistogram(in, out *Log, buckets int, minSupport float64, minCount int) []int {
	return metrics.TripletHistogram(in, out, buckets, minSupport, minCount)
}

// ConditionalTripletHistogram bins the scale-free per-pair share deviation
// |x_ijk/x_ij − c_ijk/c_ij| / (c_ijk/c_ij) of every retained triplet — the
// multinomial shape-preservation measure of the paper's §3.2.
func ConditionalTripletHistogram(in, out *Log, buckets int, minSupport float64, minCount int) []int {
	return metrics.ConditionalTripletHistogram(in, out, buckets, minSupport, minCount)
}

// HistogramShare converts a histogram to cumulative shares (share[i] = mass
// in bins 0..i / total mass).
func HistogramShare(hist []int) []float64 { return metrics.HistogramShare(hist) }

// Support is the relative frequency count/size.
func Support(count, size int) float64 { return metrics.Support(count, size) }
