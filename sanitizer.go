package dpslog

import (
	"context"
	"fmt"
	"slices"
	"strings"

	"dpslog/internal/bip"
	"dpslog/internal/dp"
	"dpslog/internal/obs"
	"dpslog/internal/rng"
	"dpslog/internal/sampling"
	"dpslog/internal/ump"
)

// Objective selects the utility-maximizing problem the sanitizer solves.
type Objective int

const (
	// ObjectiveOutputSize maximizes the output size Σ x_ij (O-UMP, §5.1).
	ObjectiveOutputSize Objective = iota
	// ObjectiveFrequent minimizes the frequent-pair support distances at a
	// fixed output size (F-UMP, §5.2). Requires MinSupport; OutputSize
	// defaults to λ/2.
	ObjectiveFrequent
	// ObjectiveDiversity maximizes the number of distinct retained pairs
	// (D-UMP, §5.3) using the configured BIP solver (default: the paper's
	// SPE heuristic).
	ObjectiveDiversity
	// ObjectiveCombined is the paper's §7 "joint objective" extension: a
	// single LP trading output size against frequent-pair support fidelity
	// with no fixed |O|. Requires MinSupport; weighted by SizeWeight and
	// DistanceWeight (both default to 1 when zero).
	ObjectiveCombined
	// ObjectiveQueryDiversity maximizes the number of distinct *queries*
	// retained — the query-level variant §5.3 sketches.
	ObjectiveQueryDiversity
)

func (o Objective) String() string {
	switch o {
	case ObjectiveOutputSize:
		return "output-size"
	case ObjectiveFrequent:
		return "frequent-pairs"
	case ObjectiveDiversity:
		return "diversity"
	case ObjectiveCombined:
		return "combined"
	case ObjectiveQueryDiversity:
		return "query-diversity"
	}
	return fmt.Sprintf("Objective(%d)", int(o))
}

// ParseObjective maps a name to an Objective. Both the canonical String
// forms ("output-size", "frequent-pairs", …) and the short CLI forms
// ("size", "frequent") are accepted; the empty string is ObjectiveOutputSize.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "", "size", "output-size":
		return ObjectiveOutputSize, nil
	case "frequent", "frequent-pairs":
		return ObjectiveFrequent, nil
	case "diversity":
		return ObjectiveDiversity, nil
	case "combined":
		return ObjectiveCombined, nil
	case "query-diversity":
		return ObjectiveQueryDiversity, nil
	}
	return 0, fmt.Errorf("dpslog: unknown objective %q (valid: size, frequent, diversity, combined, query-diversity)", s)
}

// MarshalText renders the objective by its canonical name, so Options
// round-trip through JSON with readable objective values.
func (o Objective) MarshalText() ([]byte, error) { return []byte(o.String()), nil }

// UnmarshalText parses any name ParseObjective accepts.
func (o *Objective) UnmarshalText(b []byte) error {
	v, err := ParseObjective(string(b))
	if err != nil {
		return err
	}
	*o = v
	return nil
}

// SolverNames lists the registered D-UMP BIP solver names in sorted order.
func SolverNames() []string { return bip.Names() }

// Options configure a Sanitizer. The JSON field names are the wire format
// of the slserve HTTP API (see internal/server).
type Options struct {
	// Epsilon is ε > 0. The paper parameterizes experiments by e^ε; use
	// math.Log to convert.
	Epsilon float64 `json:"epsilon"`
	// Delta is δ ∈ (0, 1), the bound on the probability of producing an
	// output that breaches ε-differential privacy (Definition 2).
	Delta float64 `json:"delta"`
	// Objective selects the utility-maximizing problem (default
	// ObjectiveOutputSize). In JSON it is a name: "output-size",
	// "frequent-pairs", "diversity", "combined" or "query-diversity".
	Objective Objective `json:"objective,omitzero"`
	// MinSupport is the frequent-pair threshold s for ObjectiveFrequent
	// (pair is frequent when c_ij/|D| ≥ s).
	MinSupport float64 `json:"min_support,omitzero"`
	// OutputSize is the fixed |O| for ObjectiveFrequent; 0 picks λ/2 where λ
	// is the O-UMP maximum for the same parameters.
	OutputSize int `json:"output_size,omitzero"`
	// Solver names the D-UMP BIP solver: spe (default), spe-violated,
	// branchbound, feaspump, rounding or greedy.
	Solver string `json:"solver,omitzero"`
	// SizeWeight and DistanceWeight balance ObjectiveCombined's joint
	// objective; both default to 1 when left zero.
	SizeWeight     float64 `json:"size_weight,omitzero"`
	DistanceWeight float64 `json:"distance_weight,omitzero"`
	// Seed drives the multinomial sampling (and the Laplace noise when
	// end-to-end mode is on). Runs are deterministic in the seed.
	Seed uint64 `json:"seed,omitzero"`
	// Parallelism bounds the concurrent connected-component solves of the
	// optimization step (0 = GOMAXPROCS, 1 = sequential). The sanitized
	// output is invariant in it — components of the user–pair graph are
	// solved independently and stitched deterministically — so it tunes
	// wall-clock only. See DESIGN.md §6.
	Parallelism int `json:"parallelism,omitzero"`

	// EndToEnd enables §4.2: Laplace noise Lap(D/EpsPrime) is added to the
	// optimal counts (making the count computation itself differentially
	// private) and the noisy plan is projected back into the Theorem-1
	// polytope.
	EndToEnd bool `json:"end_to_end,omitzero"`
	// D is the §4.2 count sensitivity bound (required > 0 when EndToEnd).
	D int `json:"d,omitzero"`
	// EpsPrime is the §4.2 privacy budget ε′ of the count-computation step
	// (required > 0 when EndToEnd).
	EpsPrime float64 `json:"eps_prime,omitzero"`
	// BoundSensitivity additionally runs §4.2's preprocessing procedure
	// before optimizing (EndToEnd only): every user log whose removal would
	// shift any pair's optimal count by more than D is dropped, enforcing
	// the sensitivity bound the Laplace scale assumes. Costs one solve per
	// user log — quadratic; intended for small corpora, exactly as the
	// paper treats it.
	BoundSensitivity bool `json:"bound_sensitivity,omitzero"`

	// NoBoxConstraint drops the x_ij ≤ c_ij cap (ablation benchmarks only;
	// see DESIGN.md §2).
	NoBoxConstraint bool `json:"no_box_constraint,omitzero"`
}

// Canonical returns the options with irrelevant fields zeroed and defaults
// made explicit, so that configurations which run identically compare (and
// hash) identically: the Solver default materializes for the diversity
// objectives and is cleared elsewhere, F-UMP thresholds are cleared outside
// ObjectiveFrequent/ObjectiveCombined, the combined weights default to 1,
// and the §4.2 fields are cleared unless EndToEnd is set. The server's plan
// cache keys on the canonical form.
func (o Options) Canonical() Options {
	switch o.Objective {
	case ObjectiveDiversity, ObjectiveQueryDiversity:
		if o.Solver == "" {
			o.Solver = "spe"
		}
	default:
		o.Solver = ""
	}
	switch o.Objective {
	case ObjectiveFrequent:
	case ObjectiveCombined:
		o.SizeWeight, o.DistanceWeight = o.combinedWeights()
		o.OutputSize = 0
	default:
		o.MinSupport, o.OutputSize = 0, 0
	}
	if o.Objective != ObjectiveCombined {
		o.SizeWeight, o.DistanceWeight = 0, 0
	}
	if !o.EndToEnd {
		o.D, o.EpsPrime, o.BoundSensitivity = 0, 0, false
	}
	// Plans (and therefore outputs) are parallelism-invariant, so the
	// canonical form — and the server's plan cache key — ignores it:
	// identical corpora solved at different parallelism levels share one
	// cache entry.
	o.Parallelism = 0
	return o
}

func (o Options) validate() error {
	p := dp.Params{Eps: o.Epsilon, Delta: o.Delta}
	if err := p.Validate(); err != nil {
		return err
	}
	switch o.Objective {
	case ObjectiveOutputSize, ObjectiveDiversity, ObjectiveQueryDiversity:
	case ObjectiveFrequent, ObjectiveCombined:
		if !(o.MinSupport > 0 && o.MinSupport <= 1) {
			return fmt.Errorf("dpslog: %v requires MinSupport in (0, 1], got %g", o.Objective, o.MinSupport)
		}
		if o.OutputSize < 0 {
			return fmt.Errorf("dpslog: OutputSize must be non-negative, got %d", o.OutputSize)
		}
		if o.SizeWeight < 0 || o.DistanceWeight < 0 {
			return fmt.Errorf("dpslog: objective weights must be non-negative")
		}
	default:
		return fmt.Errorf("dpslog: unknown objective %v", o.Objective)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("dpslog: Parallelism must be non-negative (0 = GOMAXPROCS), got %d", o.Parallelism)
	}
	// Fail fast on a bad solver name here rather than deep inside a D-UMP
	// solve. The empty string means the default ("spe").
	if o.Solver != "" && !slices.Contains(bip.Names(), o.Solver) {
		return fmt.Errorf("dpslog: unknown solver %q (valid: %s)", o.Solver, strings.Join(bip.Names(), ", "))
	}
	if o.EndToEnd {
		if o.D <= 0 {
			return fmt.Errorf("dpslog: EndToEnd requires sensitivity bound D > 0, got %d", o.D)
		}
		if !(o.EpsPrime > 0) {
			return fmt.Errorf("dpslog: EndToEnd requires EpsPrime > 0, got %g", o.EpsPrime)
		}
	} else if o.BoundSensitivity {
		return fmt.Errorf("dpslog: BoundSensitivity requires EndToEnd")
	}
	return nil
}

// Plan summarizes the optimization step of a sanitization run.
type Plan struct {
	// Kind is "O-UMP", "F-UMP" or "D-UMP".
	Kind string
	// Counts are the integral per-pair output counts, aligned with the pair
	// indices of Result.Preprocessed.
	Counts []int
	// OutputSize is Σ Counts.
	OutputSize int
	// Objective is the problem objective at the integral plan (size,
	// distance sum, or retained pairs).
	Objective float64
	// RelaxationObjective is the fractional optimum of the underlying LP
	// (or the BIP objective for D-UMP).
	RelaxationObjective float64
	// Lambda is the O-UMP maximum output size computed for ObjectiveFrequent
	// runs (0 otherwise).
	Lambda int
	// Iterations counts simplex iterations or BIP solver nodes (summed over
	// components for a decomposed solve).
	Iterations int
	// Components is the number of connected components of the user–pair
	// incidence graph the solve decomposed into (1 for a connected corpus).
	Components int
	// NoiseApplied reports that §4.2 end-to-end noise perturbed the counts.
	NoiseApplied bool
	// Solver aggregates the solver-depth counters (LP solves, simplex
	// refactorizations, presolve eliminations, eta-file peak, warm-start
	// hits vs cold fallbacks) across every LP behind the plan.
	Solver SolveStats
}

// SolveStats aggregates solver-depth counters across the LPs behind one
// plan; see ump.SolveStats for field semantics.
type SolveStats = ump.SolveStats

// Result is a completed sanitization.
type Result struct {
	// Output is the sanitized log, schema-identical to the input.
	Output *Log
	// Preprocessed is the input after unique-pair removal (and, when
	// Options.BoundSensitivity is set, after §4.2 user-log dropping);
	// Plan.Counts is indexed by its pairs.
	Preprocessed *Log
	// PreStats reports what preprocessing removed.
	PreStats PreprocessStats
	// DroppedUsers lists external user IDs removed by §4.2 sensitivity
	// bounding (empty unless Options.BoundSensitivity).
	DroppedUsers []string
	// Plan is the audited optimization outcome that drove the sampling.
	Plan Plan
}

// Sanitizer runs the paper's Algorithm 1 with a fixed configuration.
type Sanitizer struct {
	opts Options
	warm *WarmCache
}

// WarmCache shares simplex basis snapshots across repeated solves of the
// same corpus (PR 3): a server re-solving after a plan-cache eviction, or
// a sweep over privacy budgets, warm-starts each LP from the previous
// optimal basis instead of re-deriving it from scratch. Snapshots are
// validated before use — a stale or mismatched basis falls back to a cold
// start — so warm starts never compromise feasibility or optimality.
// Callers that need bit-reproducible releases must scope a cache to one
// (corpus, configuration) pair, as internal/server does: re-solving the
// *same* problem from its own optimal basis reproduces that basis, while
// seeding from a different budget's basis may legitimately select a
// different optimal vertex when the LP has alternate optima.
type WarmCache struct {
	pool *ump.WarmStarts
}

// NewWarmCache creates an empty warm-start cache with rolling (latest
// basis wins) semantics, the right default for sequential re-solves.
func NewWarmCache() *WarmCache {
	return &WarmCache{pool: ump.NewWarmStarts(false)}
}

// SetWarmCache attaches a warm-start cache to the sanitizer. Pass nil to
// detach. The cache is corpus-scoped: callers multiplexing corpora must
// keep one cache per corpus (keyed by Digest, as internal/server does).
func (s *Sanitizer) SetWarmCache(w *WarmCache) { s.warm = w }

// Validate checks the options without constructing a Sanitizer — the same
// checks New performs, exposed for callers (like the HTTP handlers) that
// want to reject bad configurations before committing resources.
func (o Options) Validate() error { return o.validate() }

// combinedWeights returns the effective ObjectiveCombined weights: the
// configured values, or (1, 1) when both are left zero. Canonical, the
// solve dispatch and the noisy-objective recompute must all agree on this
// defaulting, so it lives in exactly one place.
func (o Options) combinedWeights() (sizeWeight, distanceWeight float64) {
	if o.SizeWeight == 0 && o.DistanceWeight == 0 {
		return 1, 1
	}
	return o.SizeWeight, o.DistanceWeight
}

// New validates the options and returns a Sanitizer.
func New(opts Options) (*Sanitizer, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &Sanitizer{opts: opts}, nil
}

// Options returns the sanitizer's configuration.
func (s *Sanitizer) Options() Options { return s.opts }

// Sanitize runs the full pipeline on the input log: preprocess (Theorem 1
// Condition 1), solve the configured utility-maximizing problem (Conditions
// 2/3 as constraints), optionally noise the counts (§4.2), audit the final
// plan, and multinomially sample user-IDs per pair. The input log is not
// modified.
func (s *Sanitizer) Sanitize(in *Log) (*Result, error) {
	return s.SanitizeContext(context.Background(), in)
}

// SanitizeContext is Sanitize with trace propagation: when ctx carries an
// active obs span, the pipeline records child spans per stage (preprocess,
// solve with per-LP detail, noise, audit, sample). Tracing never changes
// the output; a context without a span makes every recording call a no-op.
func (s *Sanitizer) SanitizeContext(ctx context.Context, in *Log) (*Result, error) {
	opts := s.opts
	_, psp := obs.Start(ctx, "preprocess")
	pre, preStats := Preprocess(in)
	psp.SetAttr("pairs", pre.NumPairs())
	psp.SetAttr("users", pre.NumUsers())
	psp.SetAttr("removed_pairs", preStats.RemovedPairs)
	psp.End()
	params := dp.Params{Eps: opts.Epsilon, Delta: opts.Delta}
	uopts := ump.Options{NoBoxConstraint: opts.NoBoxConstraint, Solver: opts.Solver, Parallelism: opts.Parallelism}
	if s.warm != nil {
		uopts.Warm = s.warm.pool
	}

	// §4.2 sensitivity-bounding preprocessing: drop user logs whose removal
	// shifts any optimal count by more than D, so the Lap(D/ε′) scale below
	// actually covers the count computation's sensitivity.
	var droppedUsers []string
	if opts.BoundSensitivity {
		solve := func(l *Log) (map[PairKey]int, error) {
			p, _ := Preprocess(l)
			plan, err := s.solveObjective(p, params, uopts)
			if err != nil {
				return nil, err
			}
			out := make(map[PairKey]int, p.NumPairs())
			for i, x := range plan.Counts {
				if x > 0 {
					out[p.Pair(i).Key()] = x
				}
			}
			return out, nil
		}
		_, bsp := obs.Start(ctx, "sensitivity_bound")
		bounded, dropped, err := dp.BoundSensitivity(pre, opts.D, solve)
		bsp.SetAttr("dropped_users", len(dropped))
		bsp.End()
		if err != nil {
			return nil, fmt.Errorf("dpslog: sensitivity bounding: %w", err)
		}
		droppedUsers = dropped
		if len(dropped) > 0 {
			// Dropping users can orphan pairs into uniqueness; re-preprocess.
			bounded, _ = Preprocess(bounded)
		}
		pre = bounded
	}

	solveCtx, ssp := obs.Start(ctx, "solve")
	uopts.Ctx = solveCtx
	plan, lambda, err := s.solveObjectiveWithLambda(pre, params, uopts)
	if ssp != nil && plan != nil {
		ssp.SetAttr("kind", string(plan.Kind))
		ssp.SetAttr("components", plan.Components)
		ssp.SetAttr("iterations", plan.Iterations)
		ssp.SetAttr("lp_solves", plan.Stats.LPSolves)
		ssp.SetAttr("warm_hits", plan.Stats.WarmHits)
		ssp.SetAttr("warm_misses", plan.Stats.WarmMisses)
	}
	ssp.End()
	if err != nil {
		return nil, err
	}

	counts := plan.Counts
	noised := false
	if opts.EndToEnd {
		_, nsp := obs.Start(ctx, "noise")
		g := rng.New(opts.Seed ^ 0x9e3779b97f4a7c15)
		noisy, err := dp.NoisyCounts(g, counts, opts.D, opts.EpsPrime)
		if err != nil {
			nsp.End()
			return nil, err
		}
		// Respect the box and Condition 1 invariants, then re-project into
		// the Theorem-1 polytope.
		for i := range noisy {
			if c := pre.PairCount(i); !opts.NoBoxConstraint && noisy[i] > c {
				noisy[i] = c
			}
		}
		cons, err := dp.Build(pre, params)
		if err != nil {
			nsp.End()
			return nil, err
		}
		counts = dp.ProjectFeasible(cons, noisy)
		noised = true
		nsp.SetAttr("d", opts.D)
		nsp.SetAttr("eps_prime", opts.EpsPrime)
		nsp.End()
	}

	// Invariant: every released plan satisfies Theorem 1 exactly.
	_, asp := obs.Start(ctx, "audit")
	err = dp.VerifyLog(pre, params, counts)
	asp.End()
	if err != nil {
		return nil, fmt.Errorf("dpslog: internal error: plan failed audit: %w", err)
	}

	_, smp := obs.Start(ctx, "sample")
	out, err := sampling.Output(rng.New(opts.Seed), pre, counts)
	smp.End()
	if err != nil {
		return nil, err
	}
	outSize := 0
	for _, c := range counts {
		outSize += c
	}
	objective := plan.Objective
	if noised {
		// Recompute every objective on the noisy counts: the plan the
		// release realizes is the noisy one, and the solver's objective no
		// longer describes it.
		switch opts.Objective {
		case ObjectiveOutputSize:
			objective = float64(outSize)
		case ObjectiveDiversity:
			// Distinct retained pairs: noise and re-projection can push a
			// pair's count past one, so output size over-counts diversity.
			objective = float64(countPositive(counts))
		case ObjectiveQueryDiversity:
			objective = float64(distinctQueries(pre, counts))
		case ObjectiveFrequent:
			// The realized support-distance sum (previously NaN, which also
			// broke JSON encoding of the server's sync response).
			objective = ump.SupportDistance(pre, opts.MinSupport, counts)
		case ObjectiveCombined:
			ws, wd := opts.combinedWeights()
			dist := ump.SupportDistance(pre, opts.MinSupport, counts)
			objective = ws*float64(outSize)/float64(pre.Size()) - wd*dist
		}
	}
	return &Result{
		Output:       out,
		Preprocessed: pre,
		PreStats:     preStats,
		DroppedUsers: droppedUsers,
		Plan: Plan{
			Kind:                string(plan.Kind),
			Counts:              counts,
			OutputSize:          outSize,
			Objective:           objective,
			RelaxationObjective: plan.RelaxationObjective,
			Lambda:              lambda,
			Iterations:          plan.Iterations,
			Components:          plan.Components,
			NoiseApplied:        noised,
			Solver:              plan.Stats,
		},
	}, nil
}

// countPositive counts the pairs with a positive planned count.
func countPositive(counts []int) int {
	n := 0
	for _, c := range counts {
		if c > 0 {
			n++
		}
	}
	return n
}

// distinctQueries counts the distinct queries among pairs with a positive
// planned count.
func distinctQueries(l *Log, counts []int) int {
	seen := make(map[string]struct{})
	for i, c := range counts {
		if c > 0 {
			seen[l.Pair(i).Query] = struct{}{}
		}
	}
	return len(seen)
}

// solveObjective dispatches to the configured utility-maximizing problem.
func (s *Sanitizer) solveObjective(pre *Log, params dp.Params, uopts ump.Options) (*ump.Plan, error) {
	plan, _, err := s.solveObjectiveWithLambda(pre, params, uopts)
	return plan, err
}

// solveObjectiveWithLambda additionally reports the O-UMP λ computed for
// ObjectiveFrequent runs (0 for the other objectives).
func (s *Sanitizer) solveObjectiveWithLambda(pre *Log, params dp.Params, uopts ump.Options) (*ump.Plan, int, error) {
	opts := s.opts
	switch opts.Objective {
	case ObjectiveOutputSize:
		plan, err := ump.MaxOutputSize(pre, params, uopts)
		return plan, 0, err
	case ObjectiveFrequent:
		lp, err := ump.MaxOutputSize(pre, params, uopts)
		if err != nil {
			return nil, 0, err
		}
		lambda := lp.OutputSize
		outSize := opts.OutputSize
		if outSize == 0 {
			outSize = lambda / 2
		}
		if outSize > lambda {
			return nil, 0, fmt.Errorf("dpslog: OutputSize %d exceeds λ = %d for ε=%g δ=%g",
				outSize, lambda, opts.Epsilon, opts.Delta)
		}
		if outSize == 0 {
			// Degenerate budget: fall back to the (empty) O-UMP plan.
			return lp, lambda, nil
		}
		plan, err := ump.FrequentSupport(pre, params, opts.MinSupport, outSize, uopts)
		return plan, lambda, err
	case ObjectiveDiversity:
		plan, err := ump.Diversity(pre, params, uopts)
		return plan, 0, err
	case ObjectiveCombined:
		var w ump.CombinedWeights
		w.SizeWeight, w.DistanceWeight = opts.combinedWeights()
		plan, err := ump.Combined(pre, params, opts.MinSupport, w, uopts)
		return plan, 0, err
	case ObjectiveQueryDiversity:
		plan, err := ump.QueryDiversity(pre, params, uopts)
		return plan, 0, err
	}
	return nil, 0, fmt.Errorf("dpslog: unknown objective %v", opts.Objective)
}

// Lambda computes the maximum differentially private output size λ (the
// O-UMP optimum) for a raw input log under (ε, δ) — the quantity the paper
// tabulates in Table 4. The log is preprocessed internally and solved per
// connected component at GOMAXPROCS parallelism; servers multiplexing many
// solves should use LambdaParallelism to bound the fan-out.
func Lambda(in *Log, epsilon, delta float64) (int, error) {
	return LambdaParallelism(in, epsilon, delta, 0)
}

// LambdaParallelism is Lambda with an explicit bound on concurrent
// component solves (0 = GOMAXPROCS, 1 = sequential). The result does not
// depend on parallelism.
func LambdaParallelism(in *Log, epsilon, delta float64, parallelism int) (int, error) {
	pre, _ := Preprocess(in)
	plan, err := ump.MaxOutputSize(pre, dp.Params{Eps: epsilon, Delta: delta}, ump.Options{Parallelism: parallelism})
	if err != nil {
		return 0, err
	}
	return plan.OutputSize, nil
}

// MinBudget is the outcome of the breach-minimizing problem (the paper's
// §7 dual of the utility-maximizing problems).
type MinBudget struct {
	// Epsilon is the smallest per-user privacy exposure supporting the
	// requested output size: the plan satisfies Theorem 1 for any (ε, δ)
	// with ε ≥ Epsilon and ln 1/(1−δ) ≥ Epsilon.
	Epsilon float64
	// Counts is the exposure-minimal plan over Preprocessed's pair indices.
	Counts []int
	// OutputSize is the realized size (flooring may shave the target).
	OutputSize int
	// Preprocessed is the log the plan indexes.
	Preprocessed *Log
}

// MinBudgetForSize solves the privacy breach-minimizing problem: the
// smallest privacy budget under which a release of the target output size
// exists, together with that release's plan. The input is preprocessed
// internally.
func MinBudgetForSize(in *Log, target int) (*MinBudget, error) {
	pre, _ := Preprocess(in)
	res, err := ump.MinPrivacy(pre, target, ump.Options{})
	if err != nil {
		return nil, err
	}
	return &MinBudget{
		Epsilon:      res.Epsilon,
		Counts:       res.Plan.Counts,
		OutputSize:   res.Plan.OutputSize,
		Preprocessed: pre,
	}, nil
}

// MinBudgetForSizes runs the breach-minimizing solve for a ladder of
// target sizes over one corpus — the §7 frontier sweep. The input is
// preprocessed once and each step's LP warm-starts from the previous
// optimal basis, which is what makes dense ladders (bisection on the
// target, frontier tables) cheap. Results are positionally aligned with
// targets.
func MinBudgetForSizes(in *Log, targets []int) ([]*MinBudget, error) {
	pre, _ := Preprocess(in)
	warm := ump.NewWarmStarts(false)
	out := make([]*MinBudget, 0, len(targets))
	for _, target := range targets {
		res, err := ump.MinPrivacy(pre, target, ump.Options{Warm: warm})
		if err != nil {
			return nil, fmt.Errorf("dpslog: target %d: %w", target, err)
		}
		out = append(out, &MinBudget{
			Epsilon:      res.Epsilon,
			Counts:       res.Plan.Counts,
			OutputSize:   res.Plan.OutputSize,
			Preprocessed: pre,
		})
	}
	return out, nil
}

// VerifyCounts audits a plan of per-pair output counts against the
// Theorem-1 conditions for the given (preprocessed or raw) log: unique pairs
// must be zeroed and every user log's merged budget respected. counts is
// indexed by the log's pair order. A nil error certifies the plan.
func VerifyCounts(l *Log, epsilon, delta float64, counts []int) error {
	return dp.VerifyLog(l, dp.Params{Eps: epsilon, Delta: delta}, counts)
}

// BreachProbability returns the exact probability (Equation 2) that the
// user at index k of the log appears in an output sampled under the plan.
func BreachProbability(l *Log, k int, counts []int) float64 {
	return dp.BreachProbability(l, k, counts)
}
