package dpslog

import (
	"context"
	"fmt"

	"dpslog/internal/bip"
	"dpslog/internal/dp"
	"dpslog/internal/mechanism"
	"dpslog/internal/ump"
)

// The sanitization core lives in internal/mechanism behind the pluggable
// Mechanism interface (PR 9); this file re-exports the UMP vocabulary so
// the public API is unchanged, and keeps the library-level conveniences
// (Sanitizer, Lambda, MinBudget) that predate the interface.

// Objective selects the utility-maximizing problem the sanitizer solves.
type Objective = mechanism.Objective

const (
	// ObjectiveOutputSize maximizes the output size Σ x_ij (O-UMP, §5.1).
	ObjectiveOutputSize = mechanism.ObjectiveOutputSize
	// ObjectiveFrequent minimizes the frequent-pair support distances at a
	// fixed output size (F-UMP, §5.2). Requires MinSupport; OutputSize
	// defaults to λ/2.
	ObjectiveFrequent = mechanism.ObjectiveFrequent
	// ObjectiveDiversity maximizes the number of distinct retained pairs
	// (D-UMP, §5.3) using the configured BIP solver (default: the paper's
	// SPE heuristic).
	ObjectiveDiversity = mechanism.ObjectiveDiversity
	// ObjectiveCombined is the paper's §7 "joint objective" extension: a
	// single LP trading output size against frequent-pair support fidelity
	// with no fixed |O|. Requires MinSupport; weighted by SizeWeight and
	// DistanceWeight (both default to 1 when zero).
	ObjectiveCombined = mechanism.ObjectiveCombined
	// ObjectiveQueryDiversity maximizes the number of distinct *queries*
	// retained — the query-level variant §5.3 sketches.
	ObjectiveQueryDiversity = mechanism.ObjectiveQueryDiversity
)

// ParseObjective maps a name to an Objective. Both the canonical String
// forms ("output-size", "frequent-pairs", …) and the short CLI forms
// ("size", "frequent") are accepted; the empty string is ObjectiveOutputSize.
func ParseObjective(s string) (Objective, error) { return mechanism.ParseObjective(s) }

// SolverNames lists the registered D-UMP BIP solver names in sorted order.
func SolverNames() []string { return bip.Names() }

// Options configure a Sanitizer (and, through the mechanism field, any
// registered release mechanism). The JSON field names are the wire format
// of the slserve HTTP API (see internal/server). Canonical and Validate
// dispatch on the mechanism name; see internal/mechanism.
type Options = mechanism.Options

// Plan summarizes the optimization step of a sanitization run.
type Plan = mechanism.Plan

// SolveStats aggregates solver-depth counters across the LPs behind one
// plan; see ump.SolveStats for field semantics.
type SolveStats = ump.SolveStats

// Result is a completed sanitization.
type Result = mechanism.Result

// WarmCache shares simplex basis snapshots across repeated solves of the
// same corpus; see internal/mechanism for the reproducibility contract.
type WarmCache = mechanism.WarmCache

// NewWarmCache creates an empty warm-start cache with rolling (latest
// basis wins) semantics, the right default for sequential re-solves.
func NewWarmCache() *WarmCache { return mechanism.NewWarmCache() }

// CompCache caches solved per-component plans by component content digest,
// making re-solves after corpus appends incremental: only the connected
// components the appended rows changed re-solve, and every untouched
// component's plan is reused byte-identically. See internal/mechanism for
// the exactness contract.
type CompCache = mechanism.CompCache

// NewCompCache creates a component-plan cache bounded to capacity entries
// (≤ 0 selects a default).
func NewCompCache(capacity int) *CompCache { return mechanism.NewCompCache(capacity) }

// Sanitizer runs the paper's Algorithm 1 with a fixed configuration.
type Sanitizer struct {
	opts Options
	warm *WarmCache
	comp *CompCache
}

// New validates the options and returns a Sanitizer. The Sanitizer is the
// UMP pipeline's schema-preserving interface; options naming an aggregate
// mechanism are rejected here — use SanitizeMechanism for those.
func New(opts Options) (*Sanitizer, error) {
	m, err := mechanism.Get(opts.Mechanism)
	if err != nil {
		return nil, err
	}
	if err := m.Validate(opts); err != nil {
		return nil, err
	}
	if m.Name() != "ump" {
		return nil, errNotSchemaPreserving(m.Name())
	}
	return &Sanitizer{opts: opts}, nil
}

// Options returns the sanitizer's configuration.
func (s *Sanitizer) Options() Options { return s.opts }

// SetWarmCache attaches a warm-start cache to the sanitizer. Pass nil to
// detach. The cache is corpus-scoped: callers multiplexing corpora must
// keep one cache per corpus (keyed by Digest, as internal/server does).
func (s *Sanitizer) SetWarmCache(w *WarmCache) { s.warm = w }

// SetCompCache attaches a component-plan cache to the sanitizer. Pass nil
// to detach. Unlike a WarmCache it is safe to share across corpora and
// versions: the component content digest is the reuse identity.
func (s *Sanitizer) SetCompCache(c *CompCache) { s.comp = c }

// Sanitize runs the full pipeline on the input log: preprocess (Theorem 1
// Condition 1), solve the configured utility-maximizing problem (Conditions
// 2/3 as constraints), optionally noise the counts (§4.2), audit the final
// plan, and multinomially sample user-IDs per pair. The input log is not
// modified.
func (s *Sanitizer) Sanitize(in *Log) (*Result, error) {
	return s.SanitizeContext(context.Background(), in)
}

// SanitizeContext is Sanitize with trace propagation: when ctx carries an
// active obs span, the pipeline records child spans per stage (preprocess,
// solve with per-LP detail, noise, audit, sample). Tracing never changes
// the output; a context without a span makes every recording call a no-op.
func (s *Sanitizer) SanitizeContext(ctx context.Context, in *Log) (*Result, error) {
	opts := s.opts
	opts.Warm = s.warm
	opts.Comp = s.comp
	return mechanism.RunUMP(ctx, in, opts)
}

// Lambda computes the maximum differentially private output size λ (the
// O-UMP optimum) for a raw input log under (ε, δ) — the quantity the paper
// tabulates in Table 4. The log is preprocessed internally and solved per
// connected component at GOMAXPROCS parallelism; servers multiplexing many
// solves should use LambdaParallelism to bound the fan-out.
func Lambda(in *Log, epsilon, delta float64) (int, error) {
	return LambdaParallelism(in, epsilon, delta, 0)
}

// LambdaParallelism is Lambda with an explicit bound on concurrent
// component solves (0 = GOMAXPROCS, 1 = sequential). The result does not
// depend on parallelism.
func LambdaParallelism(in *Log, epsilon, delta float64, parallelism int) (int, error) {
	pre, _ := Preprocess(in)
	plan, err := ump.MaxOutputSize(pre, dp.Params{Eps: epsilon, Delta: delta}, ump.Options{Parallelism: parallelism})
	if err != nil {
		return 0, err
	}
	return plan.OutputSize, nil
}

// MinBudget is the outcome of the breach-minimizing problem (the paper's
// §7 dual of the utility-maximizing problems).
type MinBudget struct {
	// Epsilon is the smallest per-user privacy exposure supporting the
	// requested output size: the plan satisfies Theorem 1 for any (ε, δ)
	// with ε ≥ Epsilon and ln 1/(1−δ) ≥ Epsilon.
	Epsilon float64
	// Counts is the exposure-minimal plan over Preprocessed's pair indices.
	Counts []int
	// OutputSize is the realized size (flooring may shave the target).
	OutputSize int
	// Preprocessed is the log the plan indexes.
	Preprocessed *Log
}

// MinBudgetForSize solves the privacy breach-minimizing problem: the
// smallest privacy budget under which a release of the target output size
// exists, together with that release's plan. The input is preprocessed
// internally.
func MinBudgetForSize(in *Log, target int) (*MinBudget, error) {
	pre, _ := Preprocess(in)
	res, err := ump.MinPrivacy(pre, target, ump.Options{})
	if err != nil {
		return nil, err
	}
	return &MinBudget{
		Epsilon:      res.Epsilon,
		Counts:       res.Plan.Counts,
		OutputSize:   res.Plan.OutputSize,
		Preprocessed: pre,
	}, nil
}

// MinBudgetForSizes runs the breach-minimizing solve for a ladder of
// target sizes over one corpus — the §7 frontier sweep. The input is
// preprocessed once and each step's LP warm-starts from the previous
// optimal basis, which is what makes dense ladders (bisection on the
// target, frontier tables) cheap. Results are positionally aligned with
// targets.
func MinBudgetForSizes(in *Log, targets []int) ([]*MinBudget, error) {
	pre, _ := Preprocess(in)
	warm := ump.NewWarmStarts(false)
	out := make([]*MinBudget, 0, len(targets))
	for _, target := range targets {
		res, err := ump.MinPrivacy(pre, target, ump.Options{Warm: warm})
		if err != nil {
			return nil, fmt.Errorf("dpslog: target %d: %w", target, err)
		}
		out = append(out, &MinBudget{
			Epsilon:      res.Epsilon,
			Counts:       res.Plan.Counts,
			OutputSize:   res.Plan.OutputSize,
			Preprocessed: pre,
		})
	}
	return out, nil
}

// VerifyCounts audits a plan of per-pair output counts against the
// Theorem-1 conditions for the given (preprocessed or raw) log: unique pairs
// must be zeroed and every user log's merged budget respected. counts is
// indexed by the log's pair order. A nil error certifies the plan.
func VerifyCounts(l *Log, epsilon, delta float64, counts []int) error {
	return dp.VerifyLog(l, dp.Params{Eps: epsilon, Delta: delta}, counts)
}

// BreachProbability returns the exact probability (Equation 2) that the
// user at index k of the log appears in an output sampled under the plan.
func BreachProbability(l *Log, k int, counts []int) float64 {
	return dp.BreachProbability(l, k, counts)
}
