package dpslog

import (
	"math"
	"testing"
)

func TestSanitizeCombined(t *testing.T) {
	in := testCorpus(t)
	pre, _ := Preprocess(in)
	opts := testOptions(ObjectiveCombined)
	opts.MinSupport = 4.0 / float64(pre.Size())
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Sanitize(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Kind != "C-UMP" {
		t.Errorf("plan kind = %q, want C-UMP", res.Plan.Kind)
	}
	if err := VerifyCounts(res.Preprocessed, opts.Epsilon, opts.Delta, res.Plan.Counts); err != nil {
		t.Errorf("combined plan fails audit: %v", err)
	}
	if res.Output.Size() != res.Plan.OutputSize {
		t.Errorf("output size %d != plan %d", res.Output.Size(), res.Plan.OutputSize)
	}
}

func TestSanitizeCombinedRequiresSupport(t *testing.T) {
	opts := testOptions(ObjectiveCombined)
	if _, err := New(opts); err == nil {
		t.Error("ObjectiveCombined without MinSupport accepted")
	}
	opts.MinSupport = 0.01
	opts.SizeWeight = -1
	if _, err := New(opts); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestSanitizeCombinedWeightSweep(t *testing.T) {
	// As the distance weight grows, the released size must not increase.
	in := testCorpus(t)
	pre, _ := Preprocess(in)
	ms := 4.0 / float64(pre.Size())
	prev := 1 << 60
	for _, dw := range []float64{0.1, 1, 10, 100} {
		opts := testOptions(ObjectiveCombined)
		opts.MinSupport = ms
		opts.SizeWeight = 1
		opts.DistanceWeight = dw
		s, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Sanitize(in)
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan.OutputSize > prev+1 { // +1 for rounding wobble
			t.Errorf("dw=%g: output %d grew past %d despite heavier distance weight",
				dw, res.Plan.OutputSize, prev)
		}
		prev = res.Plan.OutputSize
	}
}

func TestSanitizeQueryDiversity(t *testing.T) {
	in := testCorpus(t)
	s, err := New(testOptions(ObjectiveQueryDiversity))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Sanitize(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Kind != "Q-UMP" {
		t.Errorf("plan kind = %q, want Q-UMP", res.Plan.Kind)
	}
	// One pair per query at most; every retained query appears once in the
	// output's distinct query set.
	queries := map[string]int{}
	for i := 0; i < res.Output.NumPairs(); i++ {
		queries[res.Output.Pair(i).Query]++
	}
	for q, n := range queries {
		if n > 1 {
			t.Errorf("query %q retained %d pairs, want 1", q, n)
		}
	}
	if err := VerifyCounts(res.Preprocessed, s.Options().Epsilon, s.Options().Delta, res.Plan.Counts); err != nil {
		t.Errorf("query-diversity plan fails audit: %v", err)
	}
}

func TestMinBudgetForSize(t *testing.T) {
	in := testCorpus(t)
	mb, err := MinBudgetForSize(in, 5)
	if err != nil {
		t.Fatal(err)
	}
	if mb.Epsilon <= 0 {
		t.Fatalf("ε* = %g, want > 0", mb.Epsilon)
	}
	if mb.OutputSize < 3 || mb.OutputSize > 5 {
		t.Errorf("realized size %d, want ≈5", mb.OutputSize)
	}
	// The plan must audit at its own reported budget.
	delta := 1 - math.Exp(-mb.Epsilon)
	if delta <= 0 {
		delta = 1e-9
	}
	if delta >= 1 {
		delta = 0.999999
	}
	if err := VerifyCounts(mb.Preprocessed, mb.Epsilon+1e-9, delta+1e-9, mb.Counts); err != nil {
		t.Errorf("min-budget plan fails audit at ε*: %v", err)
	}
	// And it must NOT audit at a clearly smaller budget.
	if mb.Epsilon > 0.01 {
		if err := VerifyCounts(mb.Preprocessed, mb.Epsilon/2, delta, mb.Counts); err == nil {
			t.Error("plan audits at half its minimal budget; ε* is not minimal")
		}
	}
}

func TestMinBudgetForSizeMonotone(t *testing.T) {
	in := testCorpus(t)
	prev := -1.0
	for _, target := range []int{2, 5, 10, 20} {
		mb, err := MinBudgetForSize(in, target)
		if err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		// Integral ε* can wobble slightly below the previous value when
		// flooring sheds more mass; allow a small tolerance.
		if mb.Epsilon < prev-0.05 {
			t.Errorf("ε*(%d) = %g dropped below previous %g", target, mb.Epsilon, prev)
		}
		if mb.Epsilon > prev {
			prev = mb.Epsilon
		}
	}
}

// TestMinBudgetForSizesMatchesSingles (PR 3): the warm-started ladder must
// reproduce the per-target results of independent MinBudgetForSize calls —
// basis reuse across the sweep is a latency optimization only.
func TestMinBudgetForSizes(t *testing.T) {
	in := testCorpus(t)
	targets := []int{2, 5, 10, 20}
	sweep, err := MinBudgetForSizes(in, targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != len(targets) {
		t.Fatalf("sweep returned %d results for %d targets", len(sweep), len(targets))
	}
	for i, target := range targets {
		single, err := MinBudgetForSize(in, target)
		if err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		if sweep[i].OutputSize != single.OutputSize {
			t.Errorf("target %d: sweep size %d != single-solve size %d", target, sweep[i].OutputSize, single.OutputSize)
		}
		if math.Abs(sweep[i].Epsilon-single.Epsilon) > 1e-6*(1+single.Epsilon) {
			t.Errorf("target %d: sweep ε* %g != single-solve ε* %g", target, sweep[i].Epsilon, single.Epsilon)
		}
		delta := 1 - math.Exp(-sweep[i].Epsilon)
		if delta <= 0 {
			delta = 1e-9
		}
		if err := VerifyCounts(sweep[i].Preprocessed, sweep[i].Epsilon+1e-9, delta+1e-9, sweep[i].Counts); err != nil {
			t.Errorf("target %d: sweep plan fails audit at its ε*: %v", target, err)
		}
	}
	// An infeasible target anywhere in the ladder fails the whole sweep.
	if _, err := MinBudgetForSizes(in, []int{2, 1 << 30}); err == nil {
		t.Error("absurd target inside a sweep accepted")
	}
}

func TestMinBudgetForSizeRejectsBadTarget(t *testing.T) {
	in := testCorpus(t)
	if _, err := MinBudgetForSize(in, 0); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := MinBudgetForSize(in, 1<<30); err == nil {
		t.Error("absurd target accepted")
	}
}

func TestSanitizeBoundSensitivity(t *testing.T) {
	in := testCorpus(t)
	opts := testOptions(ObjectiveOutputSize)
	opts.EndToEnd = true
	opts.D = 1 // tight bound: some users will likely be dropped
	opts.EpsPrime = 1.0
	opts.BoundSensitivity = true
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Sanitize(in)
	if err != nil {
		t.Fatal(err)
	}
	// Dropped users must be absent from the bounded log and the output.
	for _, id := range res.DroppedUsers {
		if res.Preprocessed.UserIndex(id) != -1 {
			t.Errorf("dropped user %s still in the bounded log", id)
		}
		if res.Output.UserIndex(id) != -1 {
			t.Errorf("dropped user %s appears in the output", id)
		}
	}
	// The released plan still audits against the bounded log.
	if err := VerifyCounts(res.Preprocessed, opts.Epsilon, opts.Delta, res.Plan.Counts); err != nil {
		t.Errorf("bounded release fails audit: %v", err)
	}
	// A vacuous bound must drop nobody.
	loose := opts
	loose.D = 1 << 20
	s2, err := New(loose)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Sanitize(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.DroppedUsers) != 0 {
		t.Errorf("vacuous bound dropped users %v", res2.DroppedUsers)
	}
}

func TestBoundSensitivityRequiresEndToEnd(t *testing.T) {
	opts := testOptions(ObjectiveOutputSize)
	opts.BoundSensitivity = true
	if _, err := New(opts); err == nil {
		t.Error("BoundSensitivity without EndToEnd accepted")
	}
}
